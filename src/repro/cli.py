"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``setup``    Build a hierarchy for a test problem, print its summary.
``solve``    Run one solver (sync or async) on a test problem.
``models``   Run the Section-III asynchronous-model simulators.
``table1``   Produce one matrix's Table-I block.
``analyze``  Static concurrency lint (RPR rules) + optional
             instrumented model-conformance run.
``trace``    Record (``run``), summarize (``report``) and convert
             (``export``) traces from the :mod:`repro.observe` layer.
``top``      Refreshing terminal view of a running or replayed solve,
             fed by the ``--snapshots`` JSONL stream of a live solve
             (see :mod:`repro.observe.live`).
``bench``    Kernel-layer performance bench: per-kernel and end-to-end
             timings per backend, emitted as schema-versioned
             ``BENCH_perf.json`` (see :mod:`repro.kernels.bench`).

Examples
--------
::

    python -m repro setup --set 27pt --size 12 --aggressive 1
    python -m repro solve --set 7pt --size 12 --method multadd --run-async \\
        --rescomp local --write lock --tmax 20 --alpha 0.5
    python -m repro solve --set 27pt --size 8 --run-async --tmax 40 \\
        --faults "crash:1@5;corrupt:p=0.01" --guards
    python -m repro solve --set 7pt --size 8 --run-async --backend distributed \\
        --faults "drop:p=0.05" --guards --tmax 20
    python -m repro models --set 27pt --size 10 --model full_res --delta 4
    python -m repro table1 --set 7pt --size 10 --smoother jacobi --tol 1e-6
    python -m repro analyze --strict
    python -m repro analyze --conformance --set 27pt --size 8 --tmax 5
    python -m repro trace run --set 7pt --size 8 --backend threaded \\
        --tmax 10 --out run.jsonl
    python -m repro trace report run.jsonl --delta 8
    python -m repro trace export run.jsonl --chrome run.chrome.json
    python -m repro bench --quick --out BENCH_perf.json
    python -m repro solve --set 5pt --size 64 --run-async --kernels numpy
    python -m repro solve --set 7pt --size 10 --run-async --backend threaded \\
        --tmax 200 --live --metrics-port 9464 --snapshots live.jsonl
    python -m repro top live.jsonl --once
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


from . import kernels
from .amg import SetupOptions
from .kernels.setupcache import cached_setup_hierarchy
from .core import (
    ScheduleParams,
    run_async_engine,
    simulate_full_async_residual,
    simulate_full_async_solution,
    simulate_semi_async,
)
from .core import run_procs, run_threaded
from .distributed import (
    ElasticityPolicy,
    NetworkModel,
    parse_churn_spec,
    simulate_distributed,
)
from .experiments import TABLE1_METHODS, paper_hierarchy, table1_entry
from .problems import TEST_SETS, build_problem
from .resilience import GuardPolicy, parse_fault_spec
from .solvers import AFACx, BPX, Multadd, MultiplicativeMultigrid
from .utils import format_table

__all__ = ["main"]

#: Event-time unit per async backend (see repro.observe.Tracer).
_BACKEND_CLOCK = {"engine": "steps", "threaded": "s", "procs": "s", "distributed": "sim"}


def _add_problem_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--set", dest="test_set", choices=TEST_SETS, default="7pt")
    p.add_argument("--size", type=int, default=12)
    p.add_argument("--rhs-seed", type=int, default=0)


def _add_setup_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--aggressive", type=int, default=1, help="aggressive levels")
    p.add_argument("--theta", type=float, default=0.25)
    p.add_argument(
        "--coarsen", choices=("hmis", "pmis", "rs"), default="hmis"
    )


def _build(args) -> tuple:
    problem = build_problem(args.test_set, args.size, rhs_seed=args.rhs_seed)
    if args.test_set == "mfem_elasticity":
        hierarchy = paper_hierarchy("mfem_elasticity", problem.A)
    else:
        # Memoized: repeated CLI invocations in one process (tests,
        # benchmark harnesses driving main()) pay for setup once.
        hierarchy = cached_setup_hierarchy(
            problem.A,
            SetupOptions(
                coarsen_type=getattr(args, "coarsen", "hmis"),
                aggressive_levels=getattr(args, "aggressive", 1),
                theta=getattr(args, "theta", 0.25),
            ),
        )
    return problem, hierarchy


def _cmd_setup(args) -> int:
    problem, hierarchy = _build(args)
    print(f"{args.test_set} size {args.size}: {problem.n} rows, {problem.nnz} nnz")
    print(hierarchy.summary())
    return 0


def _make_solver(args, hierarchy):
    kw = {}
    if args.smoother == "jacobi":
        kw["weight"] = args.weight
    elif args.smoother in ("hybrid_jgs", "async_gs"):
        kw["nblocks"] = args.nblocks
    if args.method == "mult":
        return MultiplicativeMultigrid(hierarchy, smoother=args.smoother, **kw)
    if args.method == "multadd":
        return Multadd(hierarchy, smoother=args.smoother, **kw)
    if args.method == "afacx":
        return AFACx(hierarchy, smoother=args.smoother, **kw)
    return BPX(hierarchy, smoother=args.smoother, **kw)


def _cmd_solve(args) -> int:
    if getattr(args, "kernels", None):
        try:
            kernels.use(args.kernels)
        except ImportError as exc:
            print(
                f"error: kernel backend {args.kernels!r} not available: {exc}",
                file=sys.stderr,
            )
            return 2
    problem, hierarchy = _build(args)
    solver = _make_solver(args, hierarchy)
    faults = None
    if args.faults:
        try:
            faults = parse_fault_spec(args.faults, seed=args.seed)
        except ValueError as exc:
            print(f"error: bad --faults spec: {exc}", file=sys.stderr)
            return 2
    guard = GuardPolicy() if args.guards else None
    if (faults is not None or guard is not None) and not args.run_async:
        print("error: --faults/--guards require --run-async", file=sys.stderr)
        return 2
    if (args.workers is not None or args.deterministic) and not (
        args.run_async and args.backend == "procs"
    ):
        print(
            "error: --workers/--deterministic require --run-async "
            "--backend procs",
            file=sys.stderr,
        )
        return 2
    elastic_requested = bool(
        args.elastic or args.churn is not None or args.ranks is not None
    )
    if elastic_requested and not (args.run_async and args.backend == "distributed"):
        print(
            "error: --elastic/--churn/--ranks require --run-async "
            "--backend distributed",
            file=sys.stderr,
        )
        return 2
    churn = None
    if args.churn is not None:
        try:
            churn = parse_churn_spec(args.churn)
        except ValueError as exc:
            print(f"error: bad --churn spec: {exc}", file=sys.stderr)
            return 2
    trace_path = getattr(args, "trace", None)
    if trace_path and not args.run_async:
        print("error: --trace requires --run-async", file=sys.stderr)
        return 2
    live_requested = bool(
        args.live
        or args.metrics_port is not None
        or args.snapshots
        or args.alert_stop
        or args.live_profile
    )
    if live_requested and not args.run_async:
        print(
            "error: --live/--metrics-port/--snapshots require --run-async",
            file=sys.stderr,
        )
        return 2
    live_cfg = None
    if live_requested:
        from .observe.live import LiveConfig

        alert_stop = frozenset(
            k.strip() for k in (args.alert_stop or "").split(",") if k.strip()
        )
        if args.snapshot_interval <= 0:
            print("error: --snapshot-interval must be positive", file=sys.stderr)
            return 2
        live_cfg = LiveConfig(
            interval_s=args.snapshot_interval,
            metrics_port=args.metrics_port,
            snapshot_path=args.snapshots,
            profile=args.live_profile,
            alert_stop=alert_stop,
        )
    if args.run_async:
        if args.method == "mult":
            print("error: the multiplicative method cannot run asynchronously", file=sys.stderr)
            return 2
        tracer = None
        if trace_path:
            from .observe import Tracer

            tracer = Tracer(clock=_BACKEND_CLOCK[args.backend])
        try:
            res, label = _dispatch_async(
                args,
                solver,
                problem,
                faults,
                guard,
                tracer=tracer,
                churn=churn,
                live=live_cfg,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        stalled = getattr(res, "stalled", False)
        degraded = getattr(res, "degraded", False)
        deg_txt = f"degraded = {degraded}, " if elastic_requested else ""
        print(
            f"{label}: relres = {res.rel_residual:.6e}, "
            f"corrects = {res.corrects:.1f}, diverged = {res.diverged}, "
            f"{deg_txt}stalled = {stalled} "
            f"[kernels: {getattr(res, 'kernel_backend', kernels.current_backend())}]"
        )
        if faults is not None or guard is not None:
            print(f"faults/guards: {res.telemetry.summary()}")
        live_sum = getattr(res, "live_summary", None)
        if live_sum is not None:
            print(live_sum.oneline())
            for alert in live_sum.alerts:
                print(f"  alert: {alert.oneline()}")
            if args.snapshots:
                print(f"snapshots: wrote {args.snapshots} (view: repro top {args.snapshots})")
            if live_sum.profile is not None and live_sum.profile.samples:
                print(live_sum.profile.table())
        if elastic_requested and getattr(res, "membership", None):
            census = ", ".join(f"{k}={v}" for k, v in res.membership.items() if v)
            print(f"membership: {census}")
        if tracer is not None:
            from .observe import write_events_jsonl

            write_events_jsonl(
                tracer.events(),
                trace_path,
                meta={
                    "clock": tracer.clock,
                    "backend": args.backend,
                    "problem": args.test_set,
                    "n": problem.n,
                    "ngrids": solver.ngrids,
                    "method": args.method,
                    "rescomp": args.rescomp,
                    "write": args.write,
                    "criterion": args.criterion,
                    "tmax": args.tmax,
                    "seed": args.seed,
                },
            )
            print(f"trace: wrote {trace_path} — {res.trace_summary.oneline()}")
    else:
        res = solver.solve(problem.b, tmax=args.tmax)
        print(
            f"sync {args.method}: relres after {res.cycles} cycles = "
            f"{res.final_relres:.6e}, diverged = {res.diverged}"
        )
    return 0


def _dispatch_async(
    args, solver, problem, faults, guard, tracer=None, churn=None, live=None
):
    """Run the chosen async backend; returns (result, display label)."""
    if args.backend == "engine":
        res = run_async_engine(
            solver,
            problem.b,
            tmax=args.tmax,
            rescomp=args.rescomp,
            write=args.write,
            criterion=args.criterion,
            alpha=args.alpha,
            seed=args.seed,
            faults=faults,
            guard=guard,
            tracer=tracer,
            live=live,
            # Traced runs want the residual-vs-time series; the engine
            # only snapshots residuals it is computing anyway.
            track_trace=tracer is not None,
        )
        label = f"async {args.method} ({args.rescomp}-res, {args.write}-write, {args.criterion})"
    elif args.backend == "threaded":
        res = run_threaded(
            solver,
            problem.b,
            tmax=args.tmax,
            rescomp=args.rescomp,
            write=args.write,
            criterion=args.criterion,
            faults=faults,
            guard=guard,
            tracer=tracer,
            live=live,
        )
        label = f"threaded {args.method} ({args.rescomp}-res, {args.write}-write, {args.criterion})"
    elif args.backend == "procs":
        res = run_procs(
            solver,
            problem.b,
            tmax=args.tmax,
            rescomp=args.rescomp,
            write=args.write,
            criterion=args.criterion,
            workers=args.workers,
            deterministic=args.deterministic,
            alpha=args.alpha,
            seed=args.seed,
            faults=faults,
            guard=guard,
            tracer=tracer,
            live=live,
        )
        mode = "deterministic" if args.deterministic else f"{args.write}-write"
        label = (
            f"procs[{res.workers}] {args.method} "
            f"({args.rescomp}-res, {mode}, {args.criterion})"
        )
    else:  # distributed
        elastic = None
        if args.elastic or churn is not None or args.ranks is not None:
            elastic = ElasticityPolicy(seed=args.seed)
        res = simulate_distributed(
            solver,
            problem.b,
            tmax=args.tmax,
            strategy="global" if args.rescomp != "local" else "local",
            network=NetworkModel(seed=args.seed),
            criterion=args.criterion,
            seed=args.seed,
            faults=faults,
            guard=guard,
            tracer=tracer,
            live=live,
            track_trace=tracer is not None,
            elastic=elastic,
            churn=churn,
            nranks=args.ranks,
        )
        label = f"distributed {args.method} ({res.strategy}-res, {args.criterion})"
    return res, label


def _cmd_models(args) -> int:
    problem, hierarchy = _build(args)
    solver = Multadd(hierarchy, smoother="jacobi", weight=problem.jacobi_weight)
    params = ScheduleParams(
        alpha=args.alpha, delta=args.delta, updates_per_grid=args.tmax, seed=args.seed
    )
    sim = {
        "semi": simulate_semi_async,
        "full_sol": simulate_full_async_solution,
        "full_res": simulate_full_async_residual,
    }[args.model]
    res = sim(solver, problem.b, params)
    print(
        f"{args.model} model: relres = {res.rel_residual:.6e} after "
        f"{res.instants} instants; p_k = "
        + ", ".join(f"{v:.2f}" for v in res.update_probabilities)
    )
    return 0


def _cmd_table1(args) -> int:
    problem, hierarchy = _build(args)
    kw = {"weight": problem.jacobi_weight} if args.smoother == "jacobi" else {}
    if args.smoother in ("hybrid_jgs", "async_gs"):
        kw["nblocks"] = args.nblocks
    rows = []
    for spec in TABLE1_METHODS:
        e = table1_entry(
            spec,
            hierarchy,
            problem.b,
            args.smoother,
            nthreads=args.threads,
            tol=args.tol,
            runs=args.runs,
            alpha=args.alpha,
            max_cycles=args.max_cycles,
            **kw,
        )
        t, c, v = e.cells()
        rows.append([spec.label, t, c, v])
    print(
        format_table(
            ["method", "time(s)", "corrects", "V-cycles"],
            rows,
            title=(
                f"Table I block — {args.test_set} ({problem.n} rows), "
                f"smoother {args.smoother}, tol {args.tol:g}"
            ),
        )
    )
    return 0


def _cmd_analyze(args) -> int:
    from .analysis import run_conformance
    from .analysis.__main__ import main as analysis_main

    lint_argv = []
    if args.strict:
        lint_argv.append("--strict")
    if not args.static:
        lint_argv.append("--no-static")
    if args.baseline:
        lint_argv += ["--baseline", args.baseline]
    if args.update_baseline:
        lint_argv.append("--update-baseline")
    if args.sarif:
        lint_argv += ["--sarif", args.sarif]
    ok = analysis_main(lint_argv) == 0
    if args.conformance:
        problem, hierarchy = _build(args)
        solver = Multadd(hierarchy, smoother="jacobi", weight=problem.jacobi_weight)
        for write in ("lock", "atomic"):
            conf = run_conformance(
                solver,
                problem.b,
                write=write,
                tmax=args.tmax,
                delta=args.delta,
            )
            print(conf.summary())
            ok = ok and conf.passed
    return 0 if ok else 1


def _add_solve_args(p: argparse.ArgumentParser) -> None:
    """Solver/async options shared by ``solve`` and ``trace run``."""
    _add_problem_args(p)
    _add_setup_args(p)
    p.add_argument("--method", choices=("mult", "multadd", "afacx", "bpx"), default="multadd")
    p.add_argument("--smoother", default="jacobi")
    p.add_argument("--weight", type=float, default=0.9)
    p.add_argument("--nblocks", type=int, default=8)
    p.add_argument("--tmax", type=int, default=20)
    p.add_argument("--rescomp", choices=("local", "global", "rupdate"), default="local")
    p.add_argument("--write", choices=("lock", "atomic"), default="lock")
    p.add_argument("--criterion", choices=("criterion1", "criterion2"), default="criterion2")
    p.add_argument("--alpha", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--backend",
        choices=("engine", "threaded", "procs", "distributed"),
        default="engine",
        help="async executor: deterministic engine, real threads, "
        "true-parallel worker processes over shared memory, or the "
        "distributed discrete-event simulator",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker-process count for --backend procs (default: "
        "min(ngrids, cpu count); each worker owns a group of grids)",
    )
    p.add_argument(
        "--deterministic",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="with --backend procs --workers 1: run the sequential "
        "engine schedule inside the single worker, bit-identical to "
        "--backend engine",
    )
    p.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault-injection spec, e.g. "
        "'crash:1@5;corrupt:p=0.01,mode=nan;drop:p=0.05' "
        "(kinds: crash, stall, corrupt, drop, dup, delay)",
    )
    p.add_argument(
        "--guards",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="enable the resilience guard layer (screening, "
        "checkpoint/rollback, watchdog restart, retransmission)",
    )
    p.add_argument(
        "--kernels",
        choices=("auto", "numpy", "numba", "naive", "off"),
        default=None,
        metavar="BACKEND",
        help="select the repro.kernels backend for this run "
        "(auto/numpy/numba/naive; default: keep the REPRO_KERNELS "
        "environment selection)",
    )
    p.add_argument(
        "--elastic",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="enable elastic rank membership on the distributed backend "
        "(heartbeat failure detection, incremental repartitioning, "
        "degraded-instead-of-failed completion)",
    )
    p.add_argument(
        "--ranks",
        type=int,
        default=None,
        metavar="N",
        help="simulated rank-pool size for --elastic (default: the "
        "thread total)",
    )
    p.add_argument(
        "--churn",
        default=None,
        metavar="SPEC",
        help="rank-churn spec for --elastic, e.g. "
        "'crash:3@0.5;stall:1@0.2,duration=0.3;join:@1.0' or "
        "'random:0.1@2.0,nranks=40,seed=1' "
        "(kinds: crash, stall, join, leave, random)",
    )
    p.add_argument(
        "--live",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="enable the live telemetry layer (streaming snapshots + "
        "online anomaly detectors); implied by --metrics-port / "
        "--snapshots",
    )
    p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve OpenMetrics scrapes on 127.0.0.1:PORT while the "
        "solve runs (0 = ephemeral port); implies --live",
    )
    p.add_argument(
        "--snapshots",
        default=None,
        metavar="PATH",
        help="stream live snapshots to a JSONL file (replay with "
        "`repro top PATH`); implies --live",
    )
    p.add_argument(
        "--snapshot-interval",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="live snapshot cadence in seconds (default: 0.1)",
    )
    p.add_argument(
        "--live-profile",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="also run the sampling profiler (kernel x grid x worker "
        "wall-time attribution) during a --live run",
    )
    p.add_argument(
        "--alert-stop",
        default=None,
        metavar="KINDS",
        help="comma-separated alert kinds that abort the run early "
        "(e.g. 'divergence,stagnation'); requires --live",
    )


def _cmd_bench(args) -> int:
    from .kernels.bench import format_report, run_bench

    backends = None
    if args.backends:
        backends = [b.strip() for b in args.backends.split(",") if b.strip()]
        unknown = [
            b for b in backends
            if kernels._ALIASES.get(b, b) not in kernels._KNOWN
        ]
        if unknown:
            print(f"error: unknown kernel backend(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
    payload = run_bench(
        quick=args.quick,
        backends=backends,
        out=args.out,
        size=args.size,
        seed=args.seed,
    )
    print(format_report(payload))
    if args.out:
        print(f"wrote {args.out}")
    missing = payload["backends"]["missing"]  # type: ignore[index]
    if missing:
        print(
            f"note: requested backend(s) not importable here and NOT "
            f"measured: {', '.join(missing)} "
            f"(install the [perf] extra for numba)"
        )
    return 0


def _cmd_trace_run(args) -> int:
    # A traced async solve: `trace run --out t.jsonl` is
    # `solve --run-async --trace t.jsonl` with the recording implied.
    args.run_async = True
    args.trace = args.out
    return _cmd_solve(args)


def _cmd_trace_report(args) -> int:
    from .observe import TraceAnalyzer

    try:
        analyzer = TraceAnalyzer.from_file(args.trace_file)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    if not analyzer.events:
        print(f"error: no events in {args.trace_file}", file=sys.stderr)
        return 2
    print(analyzer.report(delta=args.delta))
    return 0


def _cmd_trace_export(args) -> int:
    from .observe import (
        read_events_jsonl,
        residual_series,
        write_chrome_trace,
        write_residual_series,
    )

    if not args.chrome and not args.residuals:
        print("error: nothing to export (use --chrome and/or --residuals)", file=sys.stderr)
        return 2
    try:
        meta, events = read_events_jsonl(args.trace_file)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    if not events:
        print(f"error: no events in {args.trace_file}", file=sys.stderr)
        return 2
    clock = str(meta.get("clock", "s"))
    if args.chrome:
        write_chrome_trace(events, args.chrome, clock=clock)
        print(f"wrote Chrome trace {args.chrome} (open at ui.perfetto.dev)")
    if args.residuals:
        series = residual_series(events, tag="global") or residual_series(events)
        write_residual_series(series, args.residuals)
        print(f"wrote residual series {args.residuals} ({len(series)} rows)")
    return 0


def _cmd_top(args) -> int:
    from .observe.live import read_snapshots_jsonl, render_top

    def _render() -> int:
        try:
            meta, snaps = read_snapshots_jsonl(args.snapshot_file)
        except OSError as exc:
            print(f"error: cannot read snapshots: {exc}", file=sys.stderr)
            return 2
        if not snaps:
            print(f"error: no snapshots in {args.snapshot_file}", file=sys.stderr)
            return 2
        print(render_top(meta, snaps))
        return 0

    if args.once:
        return _render()
    # Follow mode: re-read and re-render on a cadence until the file
    # stops growing (watch-timeout with no new snapshot) or Ctrl-C.
    import time as _time

    last_seq = -1
    idle_s = 0.0
    try:
        while True:
            try:
                meta, snaps = read_snapshots_jsonl(args.snapshot_file)
            except OSError:
                meta, snaps = {}, []
            if snaps and snaps[-1].seq != last_seq:
                last_seq = snaps[-1].seq
                idle_s = 0.0
                # ANSI clear + home keeps the panel in place on real
                # terminals; harmless noise when redirected.
                print("\x1b[2J\x1b[H", end="")
                print(render_top(meta, snaps))
            else:
                idle_s += args.refresh
                if idle_s >= args.watch_timeout:
                    break
            _time.sleep(args.refresh)
    except KeyboardInterrupt:
        pass
    return 0 if last_seq >= 0 else 2


def _cmd_serve(args) -> int:
    import threading as _threading

    from .serve import ServeConfig, ServeHTTPServer, SolveServer

    fault_plans = {}
    for item in args.tenant_faults or []:
        tenant, _, fspec = item.partition("=")
        if not tenant or not fspec:
            print(
                f"bad --tenant-faults {item!r} (want TENANT=FAULTSPEC)",
                file=sys.stderr,
            )
            return 2
        fault_plans[tenant] = parse_fault_spec(fspec, seed=args.seed)
    config = ServeConfig(
        workers=args.workers,
        max_depth=args.max_depth,
        high_water=args.high_water,
        batch_max=args.batch_max,
        fault_plans=fault_plans,
        seed=args.seed,
    )
    server = SolveServer(config).start()
    for name in (s.strip() for s in args.sets.split(",")):
        if not name:
            continue
        problem = build_problem(name, args.size, rhs_seed=0)
        server.register_operator(
            name, problem.A, solver_kwargs={"weight": problem.jacobi_weight}
        )
        print(f"registered operator {name!r}: n={problem.n}")
    http = ServeHTTPServer(server, port=args.port).start()
    print(
        f"serving on http://127.0.0.1:{http.port} "
        f"(operators: {', '.join(server.operator_names())}; "
        f"workers={config.workers} depth={config.max_depth} "
        f"batch<={config.batch_max})"
    )
    sys.stdout.flush()
    try:
        # Sleep until the duration elapses (or forever until Ctrl-C);
        # all the work happens on the server's own threads.
        _threading.Event().wait(timeout=args.duration)
    except KeyboardInterrupt:
        pass
    http.stop()
    server.stop()
    flat = server.metrics.flatten()
    counts = {
        status: int(flat.get(f"serve.jobs.{status}", 0.0))
        for status in ("ok", "degraded", "rejected", "failed")
    }
    print(
        "served: "
        + "  ".join(f"{k}={v}" for k, v in counts.items())
        + f"  retries={int(flat.get('serve.retries', 0.0))}"
        + f"  worker_crashes={int(flat.get('serve.worker_crashes', 0.0))}"
    )
    return 0


def _cmd_submit(args) -> int:
    import json as _json
    from urllib import error, request

    payload = {
        "tenant": args.tenant,
        "operator": args.operator,
        "rhs_seed": args.rhs_seed,
        "tol": args.tol,
        "deadline_s": args.deadline,
        "tmax": args.tmax,
        "retries": args.retries,
    }
    req = request.Request(
        args.url.rstrip("/") + "/submit",
        data=_json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with request.urlopen(req, timeout=args.deadline + 60.0) as resp:
            out = _json.loads(resp.read())
    except error.URLError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(out, indent=2, sort_keys=True))
    else:
        cause = f" cause={out['cause']}" if out.get("cause") else ""
        relres = out.get("rel_residual")
        relres_s = "n/a" if relres is None else f"{relres:.3e}"
        print(
            f"job {out['job_id']} [{out['tenant']}] {out['status']}{cause}: "
            f"relres={relres_s} cycles={out['cycles']} "
            f"attempts={out['attempts']} batched={out['batched']} "
            f"latency={out['latency_s'] * 1e3:.1f}ms"
        )
    return 0 if out["status"] in ("ok", "degraded") else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Asynchronous multigrid reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("setup", help="build and summarize a hierarchy")
    _add_problem_args(p)
    _add_setup_args(p)
    p.set_defaults(func=_cmd_setup)

    p = sub.add_parser("solve", help="run a solver")
    _add_solve_args(p)
    p.add_argument("--run-async", action="store_true")
    p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record the async run's event trace to a JSONL file "
        "(see `repro trace report` / `repro trace export`)",
    )
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("models", help="run a Section-III model simulator")
    _add_problem_args(p)
    _add_setup_args(p)
    p.add_argument("--model", choices=("semi", "full_sol", "full_res"), default="semi")
    p.add_argument("--alpha", type=float, default=0.1)
    p.add_argument("--delta", type=int, default=0)
    p.add_argument("--tmax", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_models)

    p = sub.add_parser("table1", help="one Table-I block")
    _add_problem_args(p)
    _add_setup_args(p)
    p.add_argument("--smoother", default="jacobi")
    p.add_argument("--nblocks", type=int, default=4)
    p.add_argument("--threads", type=int, default=272)
    p.add_argument("--tol", type=float, default=1e-6)
    p.add_argument("--runs", type=int, default=2)
    p.add_argument("--alpha", type=float, default=0.7)
    p.add_argument("--max-cycles", type=int, default=250)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser(
        "analyze",
        help="concurrency-correctness analysis: per-file RPR lint, "
        "whole-program lockset analysis (RPR009/RPR010), and an "
        "optional instrumented conformance run",
    )
    _add_problem_args(p)
    _add_setup_args(p)
    p.add_argument(
        "--strict",
        action="store_true",
        help="fail on any unsuppressed finding; require justified noqa",
    )
    p.add_argument(
        "--static",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the whole-program passes (RPR009/RPR010); "
        "--no-static keeps only the per-file rules",
    )
    p.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="findings ratchet file: pinned findings are reported but "
        "do not fail; new findings do",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline FILE from the current findings",
    )
    p.add_argument(
        "--sarif",
        default=None,
        metavar="FILE",
        help="export the findings as a SARIF 2.1.0 log",
    )
    p.add_argument(
        "--conformance",
        action="store_true",
        help="also run a CheckedWrite-instrumented threaded solve "
        "(lock and atomic policies) and report model conformance",
    )
    p.add_argument("--tmax", type=int, default=5)
    p.add_argument(
        "--delta",
        type=int,
        default=None,
        help="staleness bound to verify (default: the sound "
        "criterion-1 bound (ngrids-1)*tmax)",
    )
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "trace",
        help="record / summarize / convert async run traces "
        "(repro.observe)",
    )
    tsub = p.add_subparsers(dest="trace_command", required=True)

    tp = tsub.add_parser("run", help="run a traced async solve")
    _add_solve_args(tp)
    tp.add_argument(
        "--out",
        default="trace.jsonl",
        metavar="PATH",
        help="JSONL trace output path (default: trace.jsonl)",
    )
    tp.set_defaults(func=_cmd_trace_run)

    tp = tsub.add_parser(
        "report", help="recover model quantities + residual history from a trace"
    )
    tp.add_argument("trace_file", help="JSONL trace from `trace run` / `solve --trace`")
    tp.add_argument(
        "--delta",
        type=float,
        default=None,
        help="check the observed read staleness against this bound δ",
    )
    tp.set_defaults(func=_cmd_trace_report)

    tp = tsub.add_parser(
        "export", help="convert a trace to Chrome trace-event JSON / residual CSV"
    )
    tp.add_argument("trace_file", help="JSONL trace from `trace run` / `solve --trace`")
    tp.add_argument(
        "--chrome",
        default=None,
        metavar="PATH",
        help="write Chrome trace-event JSON (Perfetto / chrome://tracing)",
    )
    tp.add_argument(
        "--residuals",
        default=None,
        metavar="PATH",
        help="write the (t, relres) series as CSV",
    )
    tp.set_defaults(func=_cmd_trace_export)

    p = sub.add_parser(
        "top",
        help="refreshing terminal view of a live snapshot stream "
        "(repro solve --live --snapshots FILE)",
    )
    p.add_argument("snapshot_file", help="JSONL snapshot stream from solve --snapshots")
    p.add_argument(
        "--once",
        action="store_true",
        help="render the latest state once and exit (CI / scripting)",
    )
    p.add_argument(
        "--refresh",
        type=float,
        default=0.5,
        help="follow-mode poll interval in seconds (default: 0.5)",
    )
    p.add_argument(
        "--watch-timeout",
        type=float,
        default=10.0,
        help="follow mode exits after this many seconds without a "
        "new snapshot (default: 10)",
    )
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "bench",
        help="kernel-layer perf bench; writes schema-versioned "
        "BENCH_perf.json (repro.kernels.bench)",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller problem, fewer repetitions",
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON payload here (e.g. BENCH_perf.json)",
    )
    p.add_argument(
        "--size",
        type=int,
        default=None,
        help="5pt grid length (default: 256, or 64 with --quick)",
    )
    p.add_argument(
        "--backends",
        default=None,
        metavar="LIST",
        help="comma-separated backends to measure (default: all "
        "importable); unimportable ones are reported as missing",
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant solve server with an HTTP front-end "
        "(repro.serve; see docs/SERVING.md)",
    )
    p.add_argument(
        "--sets",
        default="7pt",
        metavar="LIST",
        help="comma-separated test sets to register as operators",
    )
    p.add_argument("--size", type=int, default=12)
    p.add_argument("--port", type=int, default=8077, help="0 = ephemeral")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--max-depth", type=int, default=64)
    p.add_argument("--high-water", type=int, default=None)
    p.add_argument("--batch-max", type=int, default=8)
    p.add_argument(
        "--duration",
        type=float,
        default=None,
        help="seconds to serve (default: until Ctrl-C)",
    )
    p.add_argument(
        "--tenant-faults",
        action="append",
        metavar="TENANT=SPEC",
        help="fault plan injected into one tenant's jobs, e.g. "
        "crashy=crash:0@2 (repeatable; spec syntax as --faults)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit", help="submit one solve job to a running `repro serve`"
    )
    p.add_argument("--url", default="http://127.0.0.1:8077")
    p.add_argument("--tenant", default="cli")
    p.add_argument("--operator", default="7pt")
    p.add_argument("--rhs-seed", type=int, default=0)
    p.add_argument("--tol", type=float, default=1e-8)
    p.add_argument("--deadline", type=float, default=5.0)
    p.add_argument("--tmax", type=int, default=60)
    p.add_argument("--retries", type=int, default=1)
    p.add_argument(
        "--json", action="store_true", help="print the full result as JSON"
    )
    p.set_defaults(func=_cmd_submit)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — normal shell usage,
        # not an error.  Detach stdout so the interpreter's shutdown
        # flush doesn't raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
