"""HTTP front-end for :class:`repro.serve.SolveServer`.

Endpoints (stdlib ``ThreadingHTTPServer``, loopback by default):

- ``GET /metrics`` — OpenMetrics exposition of the server's
  :class:`~repro.observe.Metrics` registry (counters/gauges as gauges,
  histograms with ``_bucket``/``_sum``/``_count`` samples).  The
  collection runs on a bounded helper thread: a stalled provider
  yields **503** promptly, same contract as
  :class:`repro.observe.MetricsServer`.
- ``GET /healthz`` — liveness + queue depth as JSON.
- ``GET /stats`` — the full :meth:`SolveServer.stats` snapshot.
- ``POST /submit`` — one solve job as JSON; blocks until the job's
  terminal result (bounded by the job deadline plus a grace window)
  and returns :meth:`JobResult.to_dict`.  The RHS is either an
  explicit ``"b"`` list or a seeded ``"rhs_seed"`` (server-side
  standard-normal draw — deterministic, per RPR003).

Metric names are sanitized for the exposition (``serve.jobs.ok.acme``
→ ``serve_jobs_ok_acme``); labels are deliberately not synthesized —
the flat dotted names are the repo-wide metrics vocabulary and the
docs (docs/SERVING.md) list the serving families.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

import numpy as np

from ..observe import Metrics
from .server import SolveServer

__all__ = ["metrics_to_openmetrics", "ServeHTTPServer"]

_NAME_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    out = _NAME_SANITIZE_RE.sub("_", name)
    if not out or not (out[0].isalpha() or out[0] in "_:"):
        out = "_" + out
    return out


def metrics_to_openmetrics(metrics: Metrics) -> str:
    """Render one ``Metrics.collect()`` snapshot as OpenMetrics text."""
    snap = metrics.collect()
    lines: List[str] = []

    def sample(name: str, value: float) -> None:
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {float(value)!r}")

    counters: Dict[str, float] = snap["counters"]  # type: ignore[assignment]
    gauges: Dict[str, float] = snap["gauges"]  # type: ignore[assignment]
    providers: Dict[str, Dict[str, float]] = snap["providers"]  # type: ignore[assignment]
    histograms: Dict[str, Dict[str, Any]] = snap["histograms"]  # type: ignore[assignment]
    for name, value in counters.items():
        sample(_sanitize(name), value)
    for name, value in gauges.items():
        sample(_sanitize(name), value)
    for pname, values in providers.items():
        for name, value in values.items():
            sample(_sanitize(f"{pname}.{name}"), value)
    for name, h in histograms.items():
        base = _sanitize(name)
        lines.append(f"# TYPE {base} histogram")
        cumulative = 0
        for bound, count in zip(h["bounds"], h["counts"]):
            cumulative += count
            lines.append(f'{base}_bucket{{le="{float(bound)!r}"}} {cumulative}')
        lines.append(f'{base}_bucket{{le="+Inf"}} {h["count"]}')
        lines.append(f"{base}_sum {float(h['sum'])!r}")
        lines.append(f"{base}_count {h['count']}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class ServeHTTPServer:
    """Bounded HTTP front-end over one :class:`SolveServer`."""

    def __init__(
        self,
        server: SolveServer,
        port: int = 0,
        host: str = "127.0.0.1",
        collect_timeout_s: float = 2.0,
        submit_grace_s: float = 30.0,
    ) -> None:
        if collect_timeout_s <= 0 or submit_grace_s <= 0:
            raise ValueError("timeouts must be positive")
        solve_server = server
        timeout_s = float(collect_timeout_s)
        grace_s = float(submit_grace_s)

        class _Handler(BaseHTTPRequestHandler):
            timeout = max(timeout_s, grace_s)  # socket read bound

            def _reply(
                self, code: int, body: bytes, ctype: str = "application/json"
            ) -> None:
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _reply_json(self, code: int, obj: Dict[str, Any]) -> None:
                self._reply(code, json.dumps(obj).encode("utf-8"))

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    self._get_metrics()
                elif path == "/healthz":
                    self._reply_json(
                        200,
                        {
                            "status": "ok",
                            "queue_depth": solve_server.admission.depth(),
                            "workers_alive": len(
                                [
                                    t
                                    for t in solve_server.alive_threads()
                                    if t.name.startswith("serve-worker")
                                ]
                            ),
                        },
                    )
                elif path == "/stats":
                    self._reply_json(200, _jsonable(solve_server.stats()))
                else:
                    self._reply_json(404, {"error": f"unknown path {path}"})

            def _get_metrics(self) -> None:
                box: List[bytes] = []

                def _collect() -> None:
                    box.append(
                        metrics_to_openmetrics(solve_server.metrics).encode("utf-8")
                    )

                helper = threading.Thread(
                    target=_collect, name="serve-metrics-collect", daemon=True
                )
                helper.start()
                helper.join(timeout=timeout_s)
                if not box:
                    self._reply(
                        503,
                        b"metrics collection stalled\n",
                        ctype="text/plain; charset=utf-8",
                    )
                    return
                self._reply(
                    200,
                    box[0],
                    ctype=(
                        "application/openmetrics-text; "
                        "version=1.0.0; charset=utf-8"
                    ),
                )

            def do_POST(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path != "/submit":
                    self._reply_json(404, {"error": f"unknown path {path}"})
                    return
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                    payload = json.loads(self.rfile.read(length) or b"{}")
                    tenant = str(payload["tenant"])
                    operator = str(payload["operator"])
                    ref = solve_server.operator(operator)
                    if "b" in payload:
                        b = np.asarray(payload["b"], dtype=np.float64)
                    else:
                        rng = np.random.default_rng(int(payload.get("rhs_seed", 0)))
                        b = rng.standard_normal(ref.n)
                    spec_kwargs: Dict[str, Any] = {}
                    for key in (
                        "tol",
                        "deadline_s",
                        "divergence_threshold",
                    ):
                        if key in payload:
                            spec_kwargs[key] = float(payload[key])
                    for key in ("tmax", "retries"):
                        if key in payload:
                            spec_kwargs[key] = int(payload[key])
                except (KeyError, TypeError, ValueError) as exc:
                    self._reply_json(400, {"error": f"bad request: {exc}"})
                    return
                ticket = solve_server.submit_named(
                    tenant, operator, b, **spec_kwargs
                )
                deadline_s = float(spec_kwargs.get("deadline_s", 5.0))
                result = ticket.result(timeout=deadline_s + grace_s)
                if result is None:  # pragma: no cover - server bug guard
                    self._reply_json(500, {"error": "job did not terminate"})
                    return
                self._reply_json(200, _jsonable(result.to_dict()))

            def log_message(self, format: str, *args: Any) -> None:
                pass  # keep scrape/submit logs out of server stdout

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    def start(self) -> "ServeHTTPServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="serve-http", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=2.0)
        self._thread = None
        self._httpd.server_close()


def _jsonable(obj: Any) -> Any:
    """Best-effort conversion of stats payloads to JSON-safe values."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, float) and obj != obj:
        return None
    return obj
