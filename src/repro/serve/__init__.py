"""Solver-as-a-service: the fault-isolated, backpressured solve server.

The paper's asynchronous iterations keep making progress when workers
straggle or die; this package carries the same posture up one layer —
a long-running, multi-tenant *service* over the repo's solvers that
survives overload (bounded admission + tenant-fair shedding), tenant
misbehavior (deadlines, retry budgets, per-job fault isolation) and
poisoned operators (per-content-hash circuit breaker), while the
content-hash setup cache keeps warm solves cheap and same-operator
jobs coalesce into blocked multi-RHS batches.

Entry points::

    from repro.serve import ServeConfig, SolveServer, JobSpec

    server = SolveServer(ServeConfig(workers=2)).start()
    ref = server.register_operator("poisson", A)
    ticket = server.submit(JobSpec(tenant="acme", operator=ref, b=b))
    result = ticket.result(timeout=10.0)   # never hangs
    server.stop()

or over HTTP (``repro serve`` / ``repro submit`` on the CLI) via
:class:`ServeHTTPServer`.  See docs/SERVING.md for the state machines
and the metric-name vocabulary.
"""

from .admission import AdmissionQueue
from .batch import ColumnContext, ColumnOutcome, solve_batch
from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerDecision, CircuitBreaker
from .http import ServeHTTPServer, metrics_to_openmetrics
from .jobs import (
    DEGRADED,
    FAILED,
    Job,
    JobResult,
    JobSpec,
    OK,
    OperatorRef,
    REJECTED,
    TERMINAL_STATUSES,
    Ticket,
)
from .server import LATENCY_BUCKETS_S, ServeConfig, SolveServer

__all__ = [
    "AdmissionQueue",
    "ColumnContext",
    "ColumnOutcome",
    "solve_batch",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "BreakerDecision",
    "CircuitBreaker",
    "ServeHTTPServer",
    "metrics_to_openmetrics",
    "OK",
    "DEGRADED",
    "REJECTED",
    "FAILED",
    "TERMINAL_STATUSES",
    "OperatorRef",
    "JobSpec",
    "Job",
    "JobResult",
    "Ticket",
    "LATENCY_BUCKETS_S",
    "ServeConfig",
    "SolveServer",
]
