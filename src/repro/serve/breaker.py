"""Per-operator circuit breaker (closed → open → half-open).

A *poisoned operator* — one whose solves repeatedly diverge, trip
guards, or blow their deadlines — would otherwise burn a worker slot
per submission while every tenant behind it queues.  The breaker keys
on the operator's content hash (the same fingerprint the setup cache
and batcher use) and fast-fails jobs against a tripped operator at
admission time, before they consume queue depth or worker cycles.

State machine, per fingerprint::

    CLOSED --[failure_threshold consecutive failures]--> OPEN
    OPEN   --[reset_timeout_s elapsed]-->                HALF_OPEN
    HALF_OPEN: exactly one probe job is admitted;
               probe success --> CLOSED (counters reset)
               probe failure --> OPEN   (timer restarts)

Successes in CLOSED reset the consecutive-failure counter, so a flaky
operator must fail ``failure_threshold`` times *in a row* to trip.
All clocks are caller-supplied ``perf_counter`` values — the breaker
itself never reads time, which keeps it deterministic under test.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "BreakerDecision", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass
class BreakerDecision:
    """Outcome of :meth:`CircuitBreaker.allow` for one job."""

    allowed: bool
    state: str
    probe: bool = False
    """True when this job was admitted as the half-open probe; the
    caller must report its outcome via record_success/record_failure."""


@dataclass
class _Entry:
    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    probe_in_flight: bool = False
    trips: int = 0
    fast_fails: int = 0


@dataclass
class CircuitBreaker:
    """Registry of per-fingerprint breaker entries (thread-safe)."""

    failure_threshold: int = 3
    reset_timeout_s: float = 0.25
    _entries: Dict[str, _Entry] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    #: (perf_counter, fingerprint, from_state, to_state) transition log —
    #: the chaos test asserts open *and* re-close were both observed.
    transitions: List[Tuple[float, str, str, str]] = field(default_factory=list)

    def _move(self, key: str, e: _Entry, to: str, now: float) -> None:
        self.transitions.append((now, key, e.state, to))
        e.state = to

    def allow(self, key: str, now: float) -> BreakerDecision:
        """May a job against operator ``key`` proceed right now?"""
        with self._lock:
            e = self._entries.setdefault(key, _Entry())
            if e.state == CLOSED:
                return BreakerDecision(True, CLOSED)
            if e.state == OPEN and now - e.opened_at >= self.reset_timeout_s:
                self._move(key, e, HALF_OPEN, now)
                e.probe_in_flight = False
            if e.state == HALF_OPEN and not e.probe_in_flight:
                e.probe_in_flight = True
                return BreakerDecision(True, HALF_OPEN, probe=True)
            e.fast_fails += 1
            return BreakerDecision(False, e.state)

    def record_success(self, key: str, now: float) -> None:
        with self._lock:
            e = self._entries.setdefault(key, _Entry())
            if e.state == HALF_OPEN:
                self._move(key, e, CLOSED, now)
                e.probe_in_flight = False
            e.consecutive_failures = 0

    def record_failure(self, key: str, now: float) -> None:
        with self._lock:
            e = self._entries.setdefault(key, _Entry())
            if e.state == HALF_OPEN:
                # The probe failed: back to OPEN, restart the timer.
                self._move(key, e, OPEN, now)
                e.probe_in_flight = False
                e.opened_at = now
                e.trips += 1
                return
            e.consecutive_failures += 1
            if e.state == CLOSED and e.consecutive_failures >= self.failure_threshold:
                self._move(key, e, OPEN, now)
                e.opened_at = now
                e.trips += 1

    def abandon_probe(self, key: str) -> None:
        """Release a half-open probe slot whose job never produced an
        operator-attributable outcome (shed, overloaded, worker crash):
        the breaker stays HALF_OPEN and the next ``allow`` becomes the
        new probe, instead of the slot leaking and every later job
        fast-failing forever."""
        with self._lock:
            e = self._entries.get(key)
            if e is not None and e.state == HALF_OPEN:
                e.probe_in_flight = False

    def state(self, key: str) -> str:
        with self._lock:
            e = self._entries.get(key)
            return e.state if e is not None else CLOSED

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-operator breaker stats (for /metrics and introspection)."""
        with self._lock:
            return {
                key: {
                    "state": e.state,
                    "consecutive_failures": e.consecutive_failures,
                    "trips": e.trips,
                    "fast_fails": e.fast_fails,
                }
                for key, e in self._entries.items()
            }
