"""Job vocabulary of the solve server: specs, tickets, results.

A *job* is one tenant's request to solve ``A x = b`` against a named
operator to a tolerance, under a deadline.  The server's whole
robustness contract is expressed through the job lifecycle: every
submitted job terminates in **exactly one** of four terminal statuses

- ``ok``        — converged within its cycle budget and deadline;
- ``degraded``  — ran out of deadline or cycle budget: the result
  carries the best available iterate and its *honest* residual
  (``stalled=True``, mirroring the executor result contract);
- ``rejected``  — never ran: admission backpressure (``overloaded``),
  tenant-fair shedding (``shed``), circuit breaker (``circuit_open``),
  or server shutdown;
- ``failed``    — ran and could not produce an iterate: divergence,
  guard trip, worker crash with no retry budget left.

No job is ever silently dropped and no caller ever hangs: a
:class:`Ticket` resolves for every accepted *or* rejected submission.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from ..amg import SetupOptions
from ..kernels.setupcache import problem_fingerprint
from ..resilience import FaultTelemetry

__all__ = [
    "OK",
    "DEGRADED",
    "REJECTED",
    "FAILED",
    "TERMINAL_STATUSES",
    "OperatorRef",
    "JobSpec",
    "Job",
    "JobResult",
    "Ticket",
]

#: Terminal job statuses — the acceptance criterion "every job
#: terminates in exactly one of {ok, degraded, rejected,
#: failed-with-cause}" is checked against this vocabulary.
OK = "ok"
DEGRADED = "degraded"
REJECTED = "rejected"
FAILED = "failed"
TERMINAL_STATUSES = (OK, DEGRADED, REJECTED, FAILED)


class OperatorRef:
    """A registered operator: matrix + setup options + content hash.

    The fingerprint is the identity the whole serving stack keys on —
    the setup cache, the batcher's coalescing, and the circuit
    breaker all treat "same fingerprint" as "same operator".  It
    covers the matrix *content* plus the setup options and solver
    kwargs: the same matrix served under two solver configurations is
    two operators (one may diverge while the other is healthy, and a
    breaker trip on one must not black out the other).
    """

    __slots__ = ("A", "options", "solver_kwargs", "fingerprint")

    def __init__(
        self,
        A: sp.spmatrix,
        options: Optional[SetupOptions] = None,
        solver_kwargs: Optional[Dict[str, object]] = None,
    ) -> None:
        from dataclasses import astuple

        from ..linalg import as_csr

        self.A: sp.csr_matrix = as_csr(A)
        self.options = options or SetupOptions()
        #: extra solver-constructor kwargs (e.g. ``weight``); the server
        #: builds one solver per fingerprint from the first ref seen
        self.solver_kwargs: Dict[str, object] = dict(solver_kwargs or {})
        config = repr((astuple(self.options), sorted(self.solver_kwargs.items())))
        suffix = hashlib.blake2b(config.encode("utf-8"), digest_size=8).hexdigest()
        self.fingerprint = f"{problem_fingerprint(self.A)}-{suffix}"

    @property
    def n(self) -> int:
        return int(self.A.shape[0])


@dataclass(frozen=True)
class JobSpec:
    """What a tenant asks for (immutable once submitted)."""

    tenant: str
    operator: OperatorRef
    b: np.ndarray
    tol: float = 1e-8
    tmax: int = 60
    deadline_s: float = 5.0
    retries: int = 1
    divergence_threshold: float = 1e6

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if self.b.ndim != 1 or self.b.shape[0] != self.operator.n:
            raise ValueError(
                f"b must be 1-D of length {self.operator.n}, got {self.b.shape}"
            )
        if self.tol <= 0 or self.tmax < 1:
            raise ValueError("tol must be positive and tmax >= 1")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")


@dataclass
class JobResult:
    """Terminal outcome of one job.

    ``stalled``/``telemetry`` follow the repo-wide result contract
    (RPR005): a degraded job is a stalled run, and the telemetry
    carries what the guards saw while it executed.
    """

    job_id: int
    tenant: str
    status: str
    cause: str = ""
    x: Optional[np.ndarray] = None
    rel_residual: float = float("inf")
    cycles: int = 0
    attempts: int = 0
    batched: int = 0
    """Sibling count of the blocked multi-RHS batch this job ran in
    (1 = solo; 0 = never dispatched)."""
    fingerprint: str = ""
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    latency_s: float = 0.0
    deadline_met: bool = False
    stalled: bool = False
    telemetry: FaultTelemetry = field(default_factory=FaultTelemetry)

    def __post_init__(self) -> None:
        if self.status not in TERMINAL_STATUSES:
            raise ValueError(
                f"status must be one of {TERMINAL_STATUSES}, got {self.status!r}"
            )

    def oneline(self) -> str:
        extra = f" cause={self.cause}" if self.cause else ""
        return (
            f"job {self.job_id} [{self.tenant}] {self.status}{extra}: "
            f"relres={self.rel_residual:.3e} cycles={self.cycles} "
            f"attempts={self.attempts} latency={self.latency_s * 1e3:.1f}ms"
        )

    def to_dict(self, with_x: bool = False) -> Dict[str, object]:
        d: Dict[str, object] = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "status": self.status,
            "cause": self.cause,
            "rel_residual": (
                None if not np.isfinite(self.rel_residual) else float(self.rel_residual)
            ),
            "cycles": self.cycles,
            "attempts": self.attempts,
            "batched": self.batched,
            "fingerprint": self.fingerprint,
            "queue_wait_s": self.queue_wait_s,
            "service_s": self.service_s,
            "latency_s": self.latency_s,
            "deadline_met": self.deadline_met,
            "stalled": self.stalled,
        }
        if with_x and self.x is not None:
            d["x"] = [float(v) for v in self.x]
        return d


class Ticket:
    """Caller-facing handle: resolves exactly once, never hangs.

    ``result(timeout)`` blocks on an event with a mandatory timeout —
    the server completes every job (terminal status) even under crash
    and overload, and a caller that outlives its own patience gets
    ``None`` back rather than a hung thread.
    """

    def __init__(self, job_id: int) -> None:
        self.job_id = job_id
        self._event = threading.Event()
        self._result: Optional[JobResult] = None

    def complete(self, result: JobResult) -> None:
        """Resolve the ticket (idempotent: the first completion wins)."""
        if self._result is None:
            self._result = result
            self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float = 30.0) -> Optional[JobResult]:
        """The terminal :class:`JobResult`, or None after ``timeout``."""
        if self._event.wait(timeout=timeout):
            return self._result
        return None


_job_ids = itertools.count(1)


@dataclass(eq=False)
class Job:
    """Runtime record: one spec travelling through the server.

    ``eq=False`` on purpose: jobs compare (and deque-remove) by
    identity — field equality would try to compare the spec's numpy
    RHS elementwise.

    Timestamps are ``perf_counter`` values (monotonic).  The absolute
    deadline is fixed at *first* admission — a retried job re-enters
    admission with its original deadline, so retries consume the
    tenant's budget rather than extending it.
    """

    spec: JobSpec
    ticket: Ticket
    job_id: int = 0
    t_submit: float = 0.0
    t_deadline: float = 0.0
    t_enqueue: float = 0.0
    """When this job last entered admission (re-stamped on retry)."""
    t_dispatch: float = 0.0
    attempts: int = 0
    queue_wait_s: float = 0.0
    probe: bool = False
    """True when the breaker admitted this job as its half-open probe."""

    @classmethod
    def create(cls, spec: JobSpec, now: float) -> "Job":
        job_id = next(_job_ids)
        job = cls(spec=spec, ticket=Ticket(job_id), job_id=job_id)
        job.t_submit = now
        job.t_enqueue = now
        job.t_deadline = now + spec.deadline_s
        return job

    def remaining_s(self, now: float) -> float:
        return self.t_deadline - now

    def make_result(self, status: str, now: float, **kw: object) -> JobResult:
        """Build a terminal result stamped with this job's accounting."""
        res = JobResult(
            job_id=self.job_id,
            tenant=self.spec.tenant,
            status=status,
            attempts=self.attempts,
            fingerprint=self.spec.operator.fingerprint,
            queue_wait_s=self.queue_wait_s,
            latency_s=max(0.0, now - self.t_submit),
            **kw,  # type: ignore[arg-type]
        )
        res.deadline_met = res.status in (OK, DEGRADED) and now <= self.t_deadline
        return res
