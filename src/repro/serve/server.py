"""The in-process multi-tenant solve server.

:class:`SolveServer` multiplexes concurrent solve jobs from many
tenants over shared cached AMG hierarchies.  The moving parts, in the
order a job meets them:

1. **submit** — the circuit breaker (:mod:`repro.serve.breaker`) may
   fast-fail the operator (``rejected/circuit_open``); otherwise the
   bounded admission queue (:mod:`repro.serve.admission`) accepts,
   rejects (``overloaded``) or sheds by tenant-fair policy.
2. **dispatch** — a single dispatcher thread pops the queue head and
   *coalesces* up to ``batch_max - 1`` more queued jobs for the same
   operator fingerprint into one group (the blocked multi-RHS batch).
3. **execute** — a pool of worker threads runs each group through
   :func:`repro.serve.batch.solve_batch` over a solver built once per
   fingerprint on top of the thread-safe setup cache.  Guards screen
   corruptions per column; a fault-plan crash kills only its own job
   and retires the worker thread — the dispatcher respawns the pool
   (self-healing) on its next tick.
4. **finish** — a failed attempt with retry budget re-enters admission
   after exponential backoff with seeded jitter (no queue jumping); a
   job that runs out of deadline returns ``degraded`` with its best
   iterate and honest residual; every terminal result resolves the
   submitter's :class:`~repro.serve.jobs.Ticket` exactly once.

Per-tenant counters, latency histograms and SLO attainment flow into a
:class:`repro.observe.Metrics` registry (scrapeable via the observe
layer's OpenMetrics endpoint); the setup cache and breaker register as
providers, so one ``collect()`` covers the whole serving stack.

Every blocking primitive here is bounded (linter rule RPR013): the
dispatcher and workers poll with ``tick_s`` timeouts and shutdown joins
carry timeouts, so ``stop()`` cannot hang even mid-overload.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..amg import SetupOptions
from ..kernels.setupcache import (
    cached_setup_hierarchy,
    register_setupcache_metrics,
    setup_cache_info,
)
from ..observe import Metrics
from ..resilience import FaultInjector, FaultPlan, FaultTelemetry, Guard, GuardPolicy
from ..solvers import AdditiveMultigrid, Multadd
from .admission import AdmissionQueue
from .batch import ColumnContext, solve_batch
from .breaker import CircuitBreaker
from .jobs import (
    DEGRADED,
    FAILED,
    Job,
    JobResult,
    JobSpec,
    OK,
    OperatorRef,
    REJECTED,
    Ticket,
)

__all__ = ["ServeConfig", "SolveServer", "LATENCY_BUCKETS_S"]

#: latency histogram bounds, seconds (shared by latency + queue wait)
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

#: failure causes attributed to the operator → they feed the breaker
_BREAKER_FAULT_CAUSES = frozenset({"divergence", "guard_trip"})


@dataclass
class ServeConfig:
    """Tuning knobs of one :class:`SolveServer`."""

    workers: int = 2
    max_depth: int = 64
    high_water: Optional[int] = None
    #: max same-operator jobs coalesced into one blocked solve (1 = off)
    batch_max: int = 8
    smoother: str = "jacobi"
    #: consecutive operator-attributed failures that trip the breaker
    failure_threshold: int = 3
    #: open → half-open probe delay, seconds
    reset_timeout_s: float = 0.25
    backoff_base_s: float = 0.01
    backoff_jitter: float = 0.5
    #: dispatcher/worker poll cadence, seconds
    tick_s: float = 0.01
    join_timeout_s: float = 5.0
    guard_policy: Optional[GuardPolicy] = field(default_factory=GuardPolicy)
    #: per-tenant fault plans (chaos/injection); each job derives its
    #: own seeded injector from its tenant's plan
    fault_plans: Dict[str, FaultPlan] = field(default_factory=dict)
    #: seeds the backoff-jitter stream (RPR003: no unseeded RNG)
    seed: int = 0
    #: terminal results retained for inspection (bounded ring)
    result_history: int = 4096

    def __post_init__(self) -> None:
        if self.workers < 1 or self.batch_max < 1:
            raise ValueError("workers and batch_max must be >= 1")
        if self.tick_s <= 0 or self.join_timeout_s <= 0:
            raise ValueError("tick_s and join_timeout_s must be positive")
        if self.backoff_base_s <= 0 or self.backoff_jitter < 0:
            raise ValueError("backoff_base_s must be > 0, jitter >= 0")


class SolveServer:
    """In-process multi-tenant solve server (see module docstring)."""

    def __init__(
        self, config: Optional[ServeConfig] = None, metrics: Optional[Metrics] = None
    ) -> None:
        self.config = config or ServeConfig()
        self.metrics = metrics if metrics is not None else Metrics()
        self.admission = AdmissionQueue(
            max_depth=self.config.max_depth, high_water=self.config.high_water
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.failure_threshold,
            reset_timeout_s=self.config.reset_timeout_s,
        )
        self._operators: Dict[str, OperatorRef] = {}
        self._solvers: Dict[str, AdditiveMultigrid] = {}
        self._injectors: Dict[int, FaultInjector] = {}
        self._retries: List[Tuple[float, Job]] = []
        self._work: Deque[List[Job]] = deque()
        self._work_cond = threading.Condition()
        self._state_lock = threading.Lock()  # operators/solvers/injectors/retries
        self._metrics_lock = threading.Lock()  # serializes multi-writer bumps
        self._results: Deque[JobResult] = deque(maxlen=self.config.result_history)
        self._rng = np.random.default_rng(self.config.seed)
        self._stop = threading.Event()
        self._dispatcher: Optional[threading.Thread] = None
        self._worker_threads: List[threading.Thread] = []
        self._started = False
        register_setupcache_metrics(self.metrics)
        self.metrics.register_provider("breaker", self._breaker_provider)

    # -- metrics helpers ----------------------------------------------
    def _bump(self, name: str, by: float = 1.0) -> None:
        with self._metrics_lock:
            self.metrics.counter(name).inc(by)

    def _observe(self, name: str, value: float) -> None:
        with self._metrics_lock:
            self.metrics.histogram(name, LATENCY_BUCKETS_S).observe(value)

    def _set_gauge(self, name: str, value: float) -> None:
        with self._metrics_lock:
            self.metrics.gauge(name).set(value)

    def _breaker_provider(self) -> Dict[str, float]:
        snap = self.breaker.snapshot()
        out = {"closed": 0.0, "open": 0.0, "half_open": 0.0, "trips": 0.0,
               "fast_fails": 0.0}
        for entry in snap.values():
            out[str(entry["state"])] += 1.0
            out["trips"] += float(entry["trips"])  # type: ignore[arg-type]
            out["fast_fails"] += float(entry["fast_fails"])  # type: ignore[arg-type]
        return out

    # -- operator registry --------------------------------------------
    def register_operator(
        self,
        name: str,
        A: sp.spmatrix,
        options: Optional[SetupOptions] = None,
        solver_kwargs: Optional[Dict[str, object]] = None,
    ) -> OperatorRef:
        """Register (or replace) a named operator; returns its ref."""
        ref = OperatorRef(A, options, solver_kwargs)
        with self._state_lock:
            self._operators[name] = ref
        return ref

    def operator(self, name: str) -> OperatorRef:
        with self._state_lock:
            try:
                return self._operators[name]
            except KeyError:
                raise KeyError(f"unknown operator {name!r}") from None

    def operator_names(self) -> List[str]:
        with self._state_lock:
            return sorted(self._operators)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "SolveServer":
        if self._started:
            return self
        self._started = True
        self._stop.clear()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        self._dispatcher.start()
        for i in range(self.config.workers):
            self._spawn_worker(i)
        return self

    def _spawn_worker(self, idx: int) -> None:
        t = threading.Thread(
            target=self._worker_loop, name=f"serve-worker-{idx}", daemon=True
        )
        self._worker_threads.append(t)
        t.start()

    def stop(self, timeout_s: Optional[float] = None) -> None:
        """Graceful shutdown: reject everything queued, finish what's
        in flight, join every thread (bounded)."""
        timeout = self.config.join_timeout_s if timeout_s is None else timeout_s
        self._stop.set()
        now = perf_counter()
        for job in self.admission.close():
            self._complete(job, job.make_result(REJECTED, now, cause="shutdown"))
        with self._state_lock:
            pending = [job for _, job in self._retries]
            self._retries.clear()
        for job in pending:
            self._complete(job, job.make_result(REJECTED, now, cause="shutdown"))
        with self._work_cond:
            self._work_cond.notify_all()
        threads = list(self._worker_threads)
        if self._dispatcher is not None:
            threads.append(self._dispatcher)
        for t in threads:
            t.join(timeout=timeout)
        # Anything still parked in the work queue after the joins (a
        # worker died without draining it) resolves as rejected too —
        # no ticket may hang.
        leftovers: List[Job] = []
        with self._work_cond:
            while self._work:
                leftovers.extend(self._work.popleft())
        now = perf_counter()
        for job in leftovers:
            self._complete(job, job.make_result(REJECTED, now, cause="shutdown"))
        self._set_gauge("serve.workers_alive", 0.0)

    def alive_threads(self) -> List[threading.Thread]:
        """Server threads still running (empty after a clean stop)."""
        threads = list(self._worker_threads)
        if self._dispatcher is not None:
            threads.append(self._dispatcher)
        return [t for t in threads if t.is_alive()]

    # -- submission ----------------------------------------------------
    def submit(self, spec: JobSpec) -> Ticket:
        """Submit one job; always returns a ticket that resolves."""
        now = perf_counter()
        job = Job.create(spec, now)
        self._bump("serve.submitted")
        self._bump(f"serve.submitted.{spec.tenant}")
        if self._stop.is_set() or not self._started:
            self._complete(job, job.make_result(REJECTED, now, cause="shutdown"))
            return job.ticket
        self._admit(job, now)
        return job.ticket

    def submit_named(
        self, tenant: str, operator: str, b: np.ndarray, **spec_kwargs: object
    ) -> Ticket:
        """Submit against a registered operator name (CLI/HTTP path)."""
        spec = JobSpec(
            tenant=tenant, operator=self.operator(operator), b=b,
            **spec_kwargs,  # type: ignore[arg-type]
        )
        return self.submit(spec)

    def _admit(self, job: Job, now: float) -> None:
        decision = self.breaker.allow(job.spec.operator.fingerprint, now)
        if not decision.allowed:
            self._complete(job, job.make_result(REJECTED, now, cause="circuit_open"))
            return
        job.probe = job.probe or decision.probe
        job.t_enqueue = now
        admitted, shed = self.admission.offer(job)
        for victim in shed:
            self._complete(
                victim, victim.make_result(REJECTED, perf_counter(), cause="shed")
            )
        if not admitted and not any(victim is job for victim in shed):
            self._complete(job, job.make_result(REJECTED, now, cause="overloaded"))

    # -- dispatcher ----------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            now = perf_counter()
            self._requeue_due_retries(now)
            self._respawn_dead_workers()
            self._set_gauge("serve.queue_depth", float(self.admission.depth()))
            job = self.admission.take(timeout=self.config.tick_s)
            if job is None:
                continue
            group = [job]
            if self.config.batch_max > 1:
                group.extend(
                    self.admission.take_matching(
                        job.spec.operator.fingerprint, self.config.batch_max - 1
                    )
                )
            with self._work_cond:
                self._work.append(group)
                self._work_cond.notify()

    def _requeue_due_retries(self, now: float) -> None:
        with self._state_lock:
            due = [job for t, job in self._retries if t <= now]
            self._retries = [(t, job) for t, job in self._retries if t > now]
            self._set_retry_gauge_locked()
        for job in due:
            # Re-enters admission like any fresh submission: breaker
            # check, bounded queue, shed policy — no queue jumping.
            self._admit(job, perf_counter())

    def _set_retry_gauge_locked(self) -> None:
        with self._metrics_lock:
            self.metrics.gauge("serve.retry_backlog").set(float(len(self._retries)))

    def _respawn_dead_workers(self) -> None:
        alive = [t for t in self._worker_threads if t.is_alive()]
        dead = len(self._worker_threads) - len(alive)
        self._worker_threads = alive
        for _ in range(dead):
            if not self._stop.is_set():
                self._bump("serve.workers_respawned")
                self._spawn_worker(len(self._worker_threads))
        self._set_gauge(
            "serve.workers_alive",
            float(sum(1 for t in self._worker_threads if t.is_alive())),
        )

    # -- workers -------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            group = self._next_group()
            if group is None:
                continue
            try:
                crashed = self._process_group(group)
            except Exception as exc:  # defensive: no job may hang on a bug
                now = perf_counter()
                self._bump("serve.internal_errors")
                for job in group:
                    self._complete(
                        job,
                        job.make_result(
                            FAILED, now, cause=f"internal:{type(exc).__name__}"
                        ),
                    )
                continue
            if crashed:
                # A fault-plan crash killed this worker mid-job: the
                # job already failed (isolated), the thread retires,
                # and the dispatcher respawns the pool — self-healing.
                self._bump("serve.worker_crashes")
                return

    def _next_group(self) -> Optional[List[Job]]:
        with self._work_cond:
            if not self._work:
                self._work_cond.wait(timeout=self.config.tick_s)
            if not self._work:
                return None
            return self._work.popleft()

    def _process_group(self, group: List[Job]) -> bool:
        now = perf_counter()
        ref = group[0].spec.operator
        live: List[Job] = []
        for job in group:
            job.attempts += 1
            job.queue_wait_s += max(0.0, now - job.t_enqueue)
            job.t_dispatch = now
            if now >= job.t_deadline:
                # Could not even start before the deadline: degrade
                # honestly (x = 0 ⇒ relative residual exactly 1).
                self._finish_attempt(
                    job,
                    job.make_result(
                        DEGRADED,
                        now,
                        cause="deadline",
                        x=np.zeros(ref.n),
                        rel_residual=1.0,
                        cycles=0,
                        stalled=True,
                        service_s=0.0,
                    ),
                )
            else:
                live.append(job)
        if not live:
            return False
        solver = self._solver_for(ref)
        contexts = [self._context_for(job, solver) for job in live]
        columns = [job.spec.b for job in live]
        outcomes = solve_batch(solver, columns, contexts)
        done = perf_counter()
        crashed_any = False
        for job, out in zip(live, outcomes):
            crashed_any = crashed_any or out.crashed
            self._finish_attempt(
                job,
                job.make_result(
                    out.status,
                    done,
                    cause=out.cause,
                    x=out.x,
                    rel_residual=out.rel_residual,
                    cycles=out.cycles,
                    batched=len(live),
                    stalled=out.stalled,
                    telemetry=out.telemetry,
                    service_s=done - job.t_dispatch,
                ),
            )
        return crashed_any

    def _solver_for(self, ref: OperatorRef) -> AdditiveMultigrid:
        with self._state_lock:
            solver = self._solvers.get(ref.fingerprint)
        if solver is not None:
            return solver
        # Cold path outside the lock: the hierarchy build is seconds at
        # large sizes, and cached_setup_hierarchy already dedups
        # concurrent same-key builds (first insertion wins).
        hierarchy = cached_setup_hierarchy(ref.A, ref.options)
        built = Multadd(
            hierarchy,
            smoother=self.config.smoother,
            **ref.solver_kwargs,  # type: ignore[arg-type]
        )
        with self._state_lock:
            return self._solvers.setdefault(ref.fingerprint, built)

    def _context_for(self, job: Job, solver: AdditiveMultigrid) -> ColumnContext:
        spec = job.spec
        injector = self._injector_for(job, solver.ngrids)
        guard = None
        if self.config.guard_policy is not None:
            guard = Guard(
                self.config.guard_policy, ref_norm=float(np.linalg.norm(spec.b))
            )
        return ColumnContext(
            tol=spec.tol,
            tmax=spec.tmax,
            divergence_threshold=spec.divergence_threshold,
            t_deadline=job.t_deadline,
            injector=injector,
            guard=guard,
            telemetry=FaultTelemetry(),
        )

    def _injector_for(self, job: Job, ngrids: int) -> Optional[FaultInjector]:
        plan = self.config.fault_plans.get(job.spec.tenant)
        if plan is None or not plan.active:
            return None
        with self._state_lock:
            injector = self._injectors.get(job.job_id)
            if injector is None:
                # One injector per *job*, persisted across retries: a
                # one-shot crash sentence is served once, so the retry
                # runs clean instead of crash-looping.  The per-job
                # seed offset keeps tenant streams independent.
                per_job = replace(plan, seed=plan.seed + job.job_id)
                injector = FaultInjector(per_job, ngrids)
                self._injectors[job.job_id] = injector
            return injector

    # -- completion ----------------------------------------------------
    def _finish_attempt(self, job: Job, result: JobResult) -> None:
        if result.status == FAILED:
            retry_due = self._retry_due(job)
            if retry_due is not None:
                self._bump("serve.retries")
                self._bump(f"serve.retries.{job.spec.tenant}")
                with self._state_lock:
                    self._retries.append((retry_due, job))
                    self._set_retry_gauge_locked()
                return
        self._complete(job, result)

    def _retry_due(self, job: Job) -> Optional[float]:
        """Backoff due-time for the next attempt, or None if the retry
        budget or remaining deadline cannot cover it."""
        if job.attempts > job.spec.retries:
            return None
        delay = self.config.backoff_base_s * (2.0 ** (job.attempts - 1))
        with self._state_lock:
            jitter = float(self._rng.random())
        delay *= 1.0 + self.config.backoff_jitter * jitter
        due = perf_counter() + delay
        if due >= job.t_deadline:
            return None
        return due

    def _complete(self, job: Job, result: JobResult) -> None:
        self._record_breaker(job, result)
        job.ticket.complete(result)
        tenant = job.spec.tenant
        self._bump(f"serve.jobs.{result.status}")
        self._bump(f"serve.jobs.{result.status}.{tenant}")
        if result.cause:
            self._bump(f"serve.cause.{result.status}.{result.cause}")
        if result.status == REJECTED:
            self._observe(f"serve.reject_latency_s.{tenant}", result.latency_s)
        else:
            self._observe(f"serve.latency_s.{tenant}", result.latency_s)
            self._observe(f"serve.queue_wait_s.{tenant}", result.queue_wait_s)
            slo = "met" if result.deadline_met else "missed"
            self._bump(f"serve.slo.{slo}.{tenant}")
        if result.batched > 1:
            self._bump("serve.batched_jobs")
        with self._state_lock:
            self._injectors.pop(job.job_id, None)
            self._results.append(result)

    def _record_breaker(self, job: Job, result: JobResult) -> None:
        key = job.spec.operator.fingerprint
        now = perf_counter()
        if result.status == OK:
            self.breaker.record_success(key, now)
        elif result.status == DEGRADED:
            if result.cycles > 0 and result.rel_residual < 1.0:
                self.breaker.record_success(key, now)
            else:
                # Timed out with zero cycles, or burned its whole
                # budget ending *worse* than the zero iterate (a
                # guard-throttled divergent operator looks exactly
                # like this): counts as a breaker failure.
                self.breaker.record_failure(key, now)
        elif result.status == FAILED and result.cause in _BREAKER_FAULT_CAUSES:
            self.breaker.record_failure(key, now)
        elif job.probe:
            # The probe ended without telling us anything about the
            # operator (shed/overloaded/crash/internal): release the
            # half-open slot for the next candidate.
            self.breaker.abandon_probe(key)

    # -- introspection -------------------------------------------------
    def recent_results(self) -> List[JobResult]:
        with self._state_lock:
            return list(self._results)

    def stats(self) -> Dict[str, object]:
        """One inspectable snapshot of the whole serving stack."""
        return {
            "queue_depth": self.admission.depth(),
            "tenant_depths": self.admission.tenant_depths(),
            "breaker": self.breaker.snapshot(),
            "setup_cache": setup_cache_info(),
            "metrics": self.metrics.flatten(),
            "results": len(self._results),
            "workers_alive": len(
                [t for t in self._worker_threads if t.is_alive()]
            ),
        }
