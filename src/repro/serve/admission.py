"""Bounded admission with explicit backpressure and tenant-fair shed.

The queue is the server's only buffer, and it is *bounded twice*:

- ``max_depth`` is the hard wall — an offer against a full queue is
  rejected immediately with ``overloaded``.  Nothing is ever queued
  unboundedly, so a traffic spike surfaces as fast rejections rather
  than as memory growth and collapsing latency for everyone.
- ``high_water`` is the fairness threshold — while the depth exceeds
  it, the queue sheds the *newest* job of the tenant holding the
  largest share of the queue.  A single tenant flooding the server
  therefore sheds mostly its own tail, and a light tenant's jobs
  survive the storm (the chaos test's "healthy tenants' p99 within 2x
  of fault-free" claim rests on this policy).

Shedding returns the victims to the caller instead of completing them
here: the server owns result completion (single completion path), the
queue owns ordering and bounds.

Every blocking operation takes a timeout (linter rule RPR013): the
dispatcher polls :meth:`take` with its tick, so server shutdown never
hangs on an empty queue.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from .jobs import Job

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """FIFO of admitted jobs with hard bound + tenant-fair shedding."""

    def __init__(self, max_depth: int = 64, high_water: Optional[int] = None) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        hw = max_depth if high_water is None else high_water
        if not 1 <= hw <= max_depth:
            raise ValueError("high_water must be in [1, max_depth]")
        self.max_depth = int(max_depth)
        self.high_water = int(hw)
        self._q: Deque[Job] = deque()
        self._cond = threading.Condition()
        self._closed = False

    # -- producer side -------------------------------------------------
    def offer(self, job: Job) -> Tuple[bool, List[Job]]:
        """Try to admit ``job``.

        Returns ``(admitted, shed)``: ``admitted`` is False when the
        queue is at ``max_depth`` (or closed) — explicit backpressure,
        the job never entered.  ``shed`` lists jobs evicted by the
        tenant-fair policy to bring the depth back to ``high_water``
        (possibly including ``job`` itself, when its tenant dominates);
        the caller completes them as ``rejected/shed``.
        """
        with self._cond:
            if self._closed or len(self._q) >= self.max_depth:
                return False, []
            self._q.append(job)
            shed: List[Job] = []
            while len(self._q) > self.high_water:
                victim = self._pick_victim_locked()
                self._q.remove(victim)
                shed.append(victim)
            admitted = job not in shed
            if admitted:
                self._cond.notify()
            return admitted, shed

    def _pick_victim_locked(self) -> Job:
        """Newest job of the tenant with the largest queue share."""
        counts: Dict[str, int] = {}
        for j in self._q:
            counts[j.spec.tenant] = counts.get(j.spec.tenant, 0) + 1
        heaviest = max(counts, key=lambda t: counts[t])
        for j in reversed(self._q):
            if j.spec.tenant == heaviest:
                return j
        raise RuntimeError("unreachable: heaviest tenant vanished")  # pragma: no cover

    # -- consumer side -------------------------------------------------
    def take(self, timeout: float) -> Optional[Job]:
        """Pop the oldest job, waiting up to ``timeout`` seconds."""
        with self._cond:
            if not self._q:
                self._cond.wait(timeout=timeout)
            if not self._q:
                return None
            return self._q.popleft()

    def take_matching(self, fingerprint: str, limit: int) -> List[Job]:
        """Remove up to ``limit`` queued jobs for one operator (FIFO
        order preserved among them) — the batch coalescing hook."""
        if limit < 1:
            return []
        out: List[Job] = []
        with self._cond:
            kept: Deque[Job] = deque()
            while self._q:
                j = self._q.popleft()
                if len(out) < limit and j.spec.operator.fingerprint == fingerprint:
                    out.append(j)
                else:
                    kept.append(j)
            self._q = kept
        return out

    # -- lifecycle / introspection ------------------------------------
    def close(self) -> List[Job]:
        """Stop admitting; drain and return everything still queued."""
        with self._cond:
            self._closed = True
            rest = list(self._q)
            self._q.clear()
            self._cond.notify_all()
            return rest

    def depth(self) -> int:
        with self._cond:
            return len(self._q)

    def tenant_depths(self) -> Dict[str, int]:
        with self._cond:
            counts: Dict[str, int] = {}
            for j in self._q:
                counts[j.spec.tenant] = counts.get(j.spec.tenant, 0) + 1
            return counts
