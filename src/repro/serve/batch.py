"""Blocked multi-RHS batch execution with per-column isolation.

One *batch* is k same-operator jobs solved together: the residual for
all live columns comes from one :func:`repro.kernels.range_residual_block`
call (the PR 9 blocked kernels), then each column receives its grid
corrections independently.  Column ``j`` of the blocked residual is
bit-identical to the scalar kernel on that column (the kernels' parity
contract), and the per-column correction path below is byte-for-byte
the same code whether the batch holds 1 or 32 columns — so a healthy
job's iterate is **bitwise independent of its batch siblings**, which
is what makes coalescing safe to enable by default.

Isolation is per column in every direction:

- *early exit* — a converged, diverged, crashed or deadline-expired
  column leaves the active set immediately; the survivors' next
  blocked residual simply has fewer columns.  One slow RHS can never
  hold siblings past their deadlines.
- *faults* — each column carries its own optional
  :class:`~repro.resilience.FaultInjector` (the submitting tenant's
  plan) and its own single-writer telemetry shard; a corruption landing
  in column j is screened (guard) or detected (divergence) in column j
  alone.
- *crashes* — a worker crash scheduled by a column's fault plan kills
  that column (``worker_crash``) and flags the batch so the pool can
  retire the worker; sibling columns still terminate normally first.

Statuses reuse the server vocabulary: ``ok`` (converged), ``degraded``
(deadline or cycle budget exhausted — best iterate, honest residual,
``stalled=True`` per the repo-wide result contract), ``failed``
(divergence / full-cycle guard rejection / worker crash).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..kernels import range_residual_block
from ..resilience import FaultInjector, FaultTelemetry, Guard
from ..solvers import AdditiveMultigrid
from .jobs import DEGRADED, FAILED, OK

__all__ = ["ColumnContext", "ColumnOutcome", "solve_batch"]

#: Causes attributed to the *operator* (they feed the circuit breaker),
#: as opposed to ``worker_crash`` (attributed to the worker).
OPERATOR_FAULT_CAUSES = ("divergence", "guard_trip", "timeout")


@dataclass(frozen=True)
class ColumnContext:
    """Per-column solve parameters (one submitted job)."""

    tol: float = 1e-8
    tmax: int = 60
    divergence_threshold: float = 1e6
    #: absolute ``perf_counter`` deadline; ``inf`` = none
    t_deadline: float = float("inf")
    injector: Optional[FaultInjector] = None
    #: per-column guard (its ``ref_norm`` anchors to *this* column's
    #: ``||b||`` — a shared guard would let a large sibling RHS widen
    #: the magnitude screen of a small one: cross-column contamination)
    guard: Optional[Guard] = None
    telemetry: FaultTelemetry = field(default_factory=FaultTelemetry)


@dataclass
class ColumnOutcome:
    """Terminal state of one column after :func:`solve_batch`."""

    status: str
    cause: str
    x: np.ndarray
    rel_residual: float
    cycles: int
    stalled: bool = False
    crashed: bool = False
    telemetry: FaultTelemetry = field(default_factory=FaultTelemetry)


def solve_batch(
    solver: AdditiveMultigrid,
    columns: Sequence[np.ndarray],
    contexts: Sequence[ColumnContext],
    now_fn: Callable[[], float] = perf_counter,
) -> List[ColumnOutcome]:
    """Solve ``A x_j = b_j`` for every column, with per-column exits.

    ``now_fn`` exists for tests (deterministic clocks); production use
    passes wall ``perf_counter`` values consistent with the contexts'
    absolute deadlines.
    """
    if len(columns) != len(contexts):
        raise ValueError("one context per RHS column required")
    k = len(columns)
    if k == 0:
        return []
    n = solver.n
    for b in columns:
        if b.shape != (n,):
            raise ValueError(f"every RHS must have shape ({n},), got {b.shape}")

    A = solver.A
    B = np.column_stack(columns).astype(np.float64, copy=False)
    X = np.zeros((n, k), dtype=np.float64)
    bnorm = np.maximum(np.linalg.norm(B, axis=0), 1e-300)
    rel = np.full(k, np.inf)
    cycles = [0] * k
    outcomes: List[Optional[ColumnOutcome]] = [None] * k
    active = list(range(k))
    last_cycle_s = 0.0

    def finish(
        j: int, status: str, cause: str = "", stalled: bool = False,
        crashed: bool = False,
    ) -> None:
        outcomes[j] = ColumnOutcome(
            status=status,
            cause=cause,
            x=np.array(X[:, j], copy=True),
            rel_residual=float(rel[j]),
            cycles=cycles[j],
            stalled=stalled,
            crashed=crashed,
            telemetry=contexts[j].telemetry,
        )

    while active:
        # One blocked residual for every live column (the batching win);
        # column j is bit-identical to the scalar residual kernel on
        # (X[:, j], B[:, j]) whatever the sibling set is.
        Xa = np.ascontiguousarray(X[:, active])
        Ba = np.ascontiguousarray(B[:, active])
        R = range_residual_block(A, Xa, Ba, 0, n)
        now = now_fn()
        still = []
        for idx, j in enumerate(active):
            rel[j] = float(np.linalg.norm(R[:, idx]) / bnorm[j])
            ctx = contexts[j]
            if np.isfinite(rel[j]) and rel[j] <= ctx.tol:
                finish(j, OK)
            elif not np.isfinite(rel[j]) or rel[j] > ctx.divergence_threshold:
                finish(j, FAILED, cause="divergence")
            elif cycles[j] >= ctx.tmax:
                finish(j, DEGRADED, cause="cycle_budget", stalled=True)
            elif now + last_cycle_s > ctx.t_deadline:
                # Can't afford another full cycle: return the best
                # iterate with its honest residual now, instead of
                # blowing the deadline mid-cycle.
                finish(j, DEGRADED, cause="deadline", stalled=True)
            else:
                still.append((idx, j))
        if not still:
            break

        t_cycle = now_fn()
        survivors = []
        for ridx, j in still:
            ctx = contexts[j]
            r = np.ascontiguousarray(R[:, ridx])
            out = np.array(X[:, j], copy=True)
            crashed = False
            rejected = 0
            for g in range(solver.ngrids):
                if ctx.injector is not None and ctx.injector.crash_due(g, cycles[j]):
                    # The worker dies mid-job: this column's partial
                    # cycle is lost, siblings are untouched.
                    ctx.telemetry.bump("injected_crashes")
                    finish(j, FAILED, cause="worker_crash", crashed=True)
                    crashed = True
                    break
                e = solver.correction(g, r)
                if ctx.injector is not None:
                    e = ctx.injector.corrupt(e, ctx.telemetry)
                if ctx.guard is not None:
                    screened = ctx.guard.screen(e, ctx.telemetry)
                    if screened is None:
                        rejected += 1
                        continue
                    e = screened
                out += e
            if crashed:
                continue
            if ctx.guard is not None and rejected >= solver.ngrids:
                # Every correction of a full cycle was rejected: the
                # operator is unusable for this RHS, not merely noisy.
                finish(j, FAILED, cause="guard_trip")
                continue
            X[:, j] = out
            cycles[j] += 1
            survivors.append(j)
        last_cycle_s = now_fn() - t_cycle
        active = survivors

    # Every column leaves the active set through finish(), so the
    # outcome list is fully populated by construction.
    assert all(o is not None for o in outcomes)
    return [o for o in outcomes if o is not None]
