"""Write policies for shared vectors (Section IV).

When several grids correct the shared iterate ``x`` (and, for
global-res, the shared residual ``r``) concurrently, the updates race.
The paper studies two remedies:

- **lock-write** — a mutex per shared vector; a grid's whole update is
  applied atomically (:class:`LockWrite`).
- **atomic-write** — element-granular atomic fetch-and-add.  Python has
  no element atomics, so :class:`AtomicWrite` emulates the semantics
  with *striped* locks: the vector is cut into fixed-size stripes, each
  guarded by its own lock, and an update commits stripe by stripe.
  Element-level consistency is preserved while other grids may observe
  a partially-committed update — the defining behaviour (and overhead)
  of atomic writes.  The stripe count also feeds the performance
  model's per-element atomic cost.
- :class:`UnsafeWrite` — no protection at all (NumPy ``+=`` from
  threads can lose updates); kept for the ablation that shows why the
  paper needs the other two.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Any, Iterator, Tuple

import numpy as np

__all__ = [
    "WritePolicy",
    "LockWrite",
    "AtomicWrite",
    "UnsafeWrite",
    "make_write_policy",
]


class WritePolicy(ABC):
    """Owns the synchronization for one shared vector of length ``n``."""

    name = "abstract"

    def __init__(self, n: int) -> None:
        self.n = int(n)

    @abstractmethod
    def add(self, target: np.ndarray, update: np.ndarray) -> None:
        """``target += update`` with this policy's consistency."""

    @abstractmethod
    def assign_slice(self, target: np.ndarray, lo: int, hi: int, values: np.ndarray) -> None:
        """``target[lo:hi] = values`` (global-res residual refresh)."""

    @abstractmethod
    def read(self, source: np.ndarray) -> np.ndarray:
        """Read a copy of the shared vector under this policy."""


class LockWrite(WritePolicy):
    """One mutex: whole-vector updates and reads are atomic."""

    name = "lock"

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._lock = threading.Lock()

    def add(self, target: np.ndarray, update: np.ndarray) -> None:
        with self._lock:
            target += update

    def assign_slice(self, target: np.ndarray, lo: int, hi: int, values: np.ndarray) -> None:
        with self._lock:
            target[lo:hi] = values

    def read(self, source: np.ndarray) -> np.ndarray:
        with self._lock:
            return source.copy()


class AtomicWrite(WritePolicy):
    """Striped locks emulating element-granular atomic adds."""

    name = "atomic"

    def __init__(self, n: int, stripe: int = 1024) -> None:
        super().__init__(n)
        if stripe < 1:
            raise ValueError("stripe must be >= 1")
        self.stripe = int(stripe)
        self.nstripes = max(1, -(-n // self.stripe))
        self._locks = [threading.Lock() for _ in range(self.nstripes)]

    def _ranges(self, lo: int = 0, hi: int | None = None) -> Iterator[Tuple[int, int, int]]:
        hi = self.n if hi is None else hi
        first = lo // self.stripe
        last = (hi - 1) // self.stripe if hi > lo else first - 1
        for s in range(first, last + 1):
            a = max(lo, s * self.stripe)
            b = min(hi, (s + 1) * self.stripe)
            yield s, a, b

    def add(self, target: np.ndarray, update: np.ndarray) -> None:
        for s, a, b in self._ranges():
            with self._locks[s]:
                target[a:b] += update[a:b]

    def assign_slice(self, target: np.ndarray, lo: int, hi: int, values: np.ndarray) -> None:
        for s, a, b in self._ranges(lo, hi):
            with self._locks[s]:
                target[a:b] = values[a - lo : b - lo]

    def read(self, source: np.ndarray) -> np.ndarray:
        out = np.empty(self.n)
        for s, a, b in self._ranges():
            with self._locks[s]:
                out[a:b] = source[a:b]
        return out


class UnsafeWrite(WritePolicy):
    """No synchronization at all (lost updates possible — by design)."""

    name = "unsafe"

    def add(self, target: np.ndarray, update: np.ndarray) -> None:
        target += update

    def assign_slice(self, target: np.ndarray, lo: int, hi: int, values: np.ndarray) -> None:
        target[lo:hi] = values

    def read(self, source: np.ndarray) -> np.ndarray:
        return source.copy()


_POLICIES = {"lock": LockWrite, "atomic": AtomicWrite, "unsafe": UnsafeWrite}


def make_write_policy(name: str, n: int, **kwargs: Any) -> WritePolicy:
    """Build a write policy by name (``"lock"``, ``"atomic"``, ``"unsafe"``)."""
    if name not in _POLICIES:
        raise KeyError(f"unknown write policy {name!r}; known: {sorted(_POLICIES)}")
    return _POLICIES[name](n, **kwargs)
