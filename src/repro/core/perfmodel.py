"""Discrete-event machine model for wall-clock estimates.

Python under the GIL cannot reproduce the paper's KNL wall-clock
measurements directly (see DESIGN.md's substitution table), so timing
results (Table I, Fig. 6) are regenerated with a first-principles
machine model executing the *same* schedules the solvers define:

- a thread computes at ``flop_rate`` flops/s, with multiplicative
  heterogeneity jitter per work item (the "some processes take longer
  than others" of the paper's introduction — the whole reason
  asynchrony helps);
- a barrier over ``p`` threads costs ``barrier_base + barrier_coef *
  log2(p)`` seconds *plus* the straggler penalty that emerges naturally
  from taking the max over jittered compute times;
- a lock acquisition costs ``lock_cost``; an atomic update costs
  ``atomic_cost_per_element`` for every element written (this is why
  atomic-write loses to lock-write in Table I);
- threads are assigned to grids proportionally to per-correction work
  (:func:`repro.partition.work.partition_threads`).

The model deliberately has few knobs, all with physically-motivated
defaults roughly calibrated to a KNL-class socket; EXPERIMENTS.md
compares only *shapes* (who wins, where the Mult/Multadd crossover
falls), never absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

import numpy as np

from ..partition import partition_threads

__all__ = ["MachineParams", "PerfModel"]


@dataclass(frozen=True)
class MachineParams:
    """Machine constants for the discrete-event model.

    Defaults approximate one KNL core (a few GF/s effective on sparse
    kernels) with microsecond-scale synchronization.
    """

    flop_rate: float = 2.0e9  # flops/s per thread on sparse kernels
    barrier_base: float = 1.0e-6  # s, fixed cost of any barrier
    barrier_coef: float = 5.0e-7  # s per log2(participant)
    lock_cost: float = 2.0e-6  # s per lock acquisition
    atomic_cost_per_element: float = 1.0e-8  # s per atomically-updated element
    jitter: float = 0.15  # relative std-dev of per-item compute time
    seed: int = 0

    def __post_init__(self) -> None:
        if self.flop_rate <= 0:
            raise ValueError("flop_rate must be positive")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")


class PerfModel:
    """Wall-clock estimates for the solvers' execution schedules."""

    def __init__(self, params: MachineParams | None = None) -> None:
        self.params = params or MachineParams()
        self._rng = np.random.default_rng(self.params.seed)

    # ------------------------------------------------------------------
    def _compute_time(self, flops: float, nthreads: int, jittered: bool = True) -> float:
        base = flops / (self.params.flop_rate * max(1, nthreads))
        if not jittered or self.params.jitter == 0.0:
            return base
        factor = 1.0 + abs(self._rng.normal(0.0, self.params.jitter))
        return base * factor

    def barrier(self, p: int) -> float:
        """Cost of synchronizing ``p`` threads."""
        if p <= 1:
            return 0.0
        return self.params.barrier_base + self.params.barrier_coef * np.log2(p)

    def _write_cost(self, write: str, nelements: int, nthreads: int) -> float:
        if write == "lock":
            return self.params.lock_cost + self._compute_time(
                float(nelements), nthreads, jittered=False
            )
        if write == "atomic":
            # Atomic fetch-and-adds serialize on cache lines; their
            # throughput does not scale with the writer's thread count.
            return self.params.atomic_cost_per_element * nelements
        if write == "unsafe":
            return self._compute_time(float(nelements), nthreads, jittered=False)
        raise ValueError(f"unknown write policy {write!r}")

    # ------------------------------------------------------------------
    def time_mult(self, solver: Any, nthreads: int, ncycles: int) -> float:
        """Wall-clock of ``ncycles`` multiplicative V-cycles.

        Every level's smoothing/restriction/prolongation runs on *all*
        threads with a global barrier after each phase — the
        multiplicative method's synchronization burden the paper
        highlights (Fig. 6's rising Mult curves).
        """
        hier = solver.hierarchy
        total = 0.0
        for _ in range(ncycles):
            t = self._compute_time(solver.residual_flops(), nthreads) + self.barrier(
                nthreads
            )
            for k in range(hier.coarsest):
                lv = hier.levels[k]
                sweeps = solver.pre_sweeps + solver.post_sweeps
                smooth_flops = sweeps * solver.smoothers[k].flops_per_sweep()
                transfer_flops = 2.0 * lv.A.nnz + 2.0 * lv.R.nnz + 2.0 * lv.P.nnz
                # 4 phases with barriers per level per cycle direction:
                # pre-smooth, residual+restrict, prolong+add, post-smooth.
                t += self._compute_time(smooth_flops + transfer_flops, nthreads)
                t += 4.0 * self.barrier(nthreads)
            t += self._compute_time(solver.coarse.flops(), 1)  # serial coarse solve
            t += self.barrier(nthreads)
            total += t
        return total

    # ------------------------------------------------------------------
    def _grid_groups(self, solver: Any, nthreads: int) -> Tuple[np.ndarray, float]:
        """Threads per grid and the oversubscription slowdown factor.

        When there are fewer threads than grids every grid still gets a
        (time-shared) worker; all compute then slows down by
        ``sum(groups) / nthreads`` — work conservation under
        oversubscription.
        """
        groups = partition_threads(solver.work_per_grid(), nthreads)
        slowdown = max(1.0, float(groups.sum()) / float(nthreads))
        return groups, slowdown

    def _intra_barriers(self, solver: Any, k: int) -> int:
        # Restrict chain (k), Lambda/smoothing (~2), prolong chain (k),
        # one residual/read phase.
        return 2 * k + 3

    def _correction_time(
        self,
        solver: Any,
        k: int,
        tk: int,
        rescomp: str,
        write: str,
        slowdown: float = 1.0,
    ) -> float:
        t = self._compute_time(solver.correction_flops(k), tk)
        t += self._intra_barriers(solver, k) * self.barrier(tk)
        t += self._write_cost(write, solver.n, tk)  # write x
        if rescomp == "local":
            t += self._compute_time(solver.residual_flops(), tk)
        elif rescomp == "global":
            share = solver.n // max(1, solver.ngrids)
            t += self._compute_time(
                2.0 * solver.A.nnz / max(1, solver.ngrids), tk
            )
            t += self._write_cost(write, share, tk)  # refresh own rows
        elif rescomp == "rupdate":
            t += self._compute_time(2.0 * solver.A.nnz, tk)  # A e
            t += self._write_cost(write, solver.n, tk)  # write r update
        else:
            raise ValueError(f"unknown rescomp {rescomp!r}")
        return t * slowdown

    def time_sync_additive(
        self,
        solver: Any,
        nthreads: int,
        ncycles: int,
        write: str = "lock",
    ) -> float:
        """Wall-clock of synchronous Multadd/AFACx cycles.

        Grids correct concurrently on their thread groups; one global
        barrier and one all-threads residual SpMV per cycle (Section V:
        "at the end of a single cycle, all threads synchronize and
        carry out an SpMV").
        """
        groups, slowdown = self._grid_groups(solver, nthreads)
        total = 0.0
        for _ in range(ncycles):
            per_grid = []
            for k in range(solver.ngrids):
                tk = int(groups[k])
                t = self._compute_time(solver.correction_flops(k), tk)
                t += self._intra_barriers(solver, k) * self.barrier(tk)
                t += self._write_cost(write, solver.n, tk)
                per_grid.append(t)
            total += max(per_grid) * slowdown
            total += self.barrier(nthreads)
            total += self._compute_time(solver.residual_flops(), nthreads)
            total += self.barrier(nthreads)
        return total

    def time_async(
        self,
        solver: Any,
        nthreads: int,
        tmax: int,
        rescomp: str = "local",
        write: str = "lock",
        criterion: str = "criterion2",
    ) -> Tuple[float, np.ndarray]:
        """Wall-clock and per-grid correction counts of an async run.

        Event simulation: each grid performs corrections back to back
        (no global barriers).  Criterion 1 stops each grid at ``tmax``
        own corrections (wall = slowest grid's finish).  Criterion 2
        keeps every grid correcting until the *last* grid reaches
        ``tmax`` (wall = that instant; fast grids accumulate extra
        corrections — the paper's ``corrects > V-cycles``).
        """
        groups, slowdown = self._grid_groups(solver, nthreads)
        finish_each = np.zeros(solver.ngrids)
        counts = np.zeros(solver.ngrids, dtype=np.int64)
        durations = []  # per-grid list of correction durations
        for k in range(solver.ngrids):
            tk = int(groups[k])
            durs = [
                self._correction_time(solver, k, tk, rescomp, write, slowdown)
                for _ in range(tmax)
            ]
            durations.append(durs)
            finish_each[k] = float(np.sum(durs))
            counts[k] = tmax
        wall = float(finish_each.max())
        if criterion == "criterion1":
            return wall, counts
        if criterion != "criterion2":
            raise ValueError(f"unknown criterion {criterion!r}")
        # Criterion 2: grids that finished early keep correcting until
        # `wall`; estimate extra corrections from their mean duration.
        for k in range(solver.ngrids):
            mean_d = float(np.mean(durations[k]))
            if mean_d > 0.0:
                extra = int((wall - finish_each[k]) / mean_d)
                counts[k] += max(0, extra)
        return wall, counts
