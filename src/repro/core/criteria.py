"""Convergence criteria for asynchronous runs (Section V).

The paper deliberately never evaluates residual norms inside an
asynchronous solve (a norm is a reduction — a synchronization).  Runs
are stopped by correction counting:

- **Criterion 1** — a grid breaks out of its loop as soon as *it* has
  performed ``tmax`` corrections; other grids keep going until they
  reach their own count.  Used for the model simulations and Fig. 4/5.
- **Criterion 2** — a master checks whether *every* grid has reached
  ``tmax`` corrections and then raises a termination flag; grids check
  the flag after each correction, so fast grids keep correcting while
  slow ones catch up.  Used for Table I.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["Criterion1", "Criterion2"]


class Criterion1:
    """Per-grid local stop: grid ``k`` stops after ``tmax`` corrections."""

    name = "criterion1"

    def __init__(self, ngrids: int, tmax: int) -> None:
        if tmax < 1:
            raise ValueError("tmax must be >= 1")
        self.ngrids = ngrids
        self.tmax = int(tmax)
        self.counts = np.zeros(ngrids, dtype=np.int64)

    def record(self, k: int) -> None:
        self.counts[k] += 1

    def grid_done(self, k: int) -> bool:
        return bool(self.counts[k] >= self.tmax)

    def all_done(self) -> bool:
        return bool(np.all(self.counts >= self.tmax))


class Criterion2:
    """Master-flag stop: everyone runs until all reached ``tmax``.

    Thread-safe: the threaded executor's workers call :meth:`record`
    and :meth:`grid_done` concurrently; the "master" role is played by
    whichever worker's :meth:`record` observes completion (equivalent
    to the paper's dedicated master thread, without burning a thread in
    a GIL runtime).
    """

    name = "criterion2"

    def __init__(self, ngrids: int, tmax: int) -> None:
        if tmax < 1:
            raise ValueError("tmax must be >= 1")
        self.ngrids = ngrids
        self.tmax = int(tmax)
        self.counts = np.zeros(ngrids, dtype=np.int64)
        self._lock = threading.Lock()
        self._flag = False

    def record(self, k: int) -> None:
        with self._lock:
            self.counts[k] += 1
            if not self._flag and np.all(self.counts >= self.tmax):
                self._flag = True

    def grid_done(self, k: int) -> bool:
        # Grids only consult the shared flag, never their own count.
        return self._flag

    def all_done(self) -> bool:
        return self._flag
