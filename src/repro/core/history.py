"""Ring-buffer history of iterate vectors.

The asynchronous models read values from past time instants; since the
maximum read delay is ``delta``, only the last ``delta + 1`` vectors
are ever addressable and a fixed ring buffer suffices (storage
``(delta + 1) x n`` — the simulation's only memory overhead).
"""

from __future__ import annotations

import numpy as np

__all__ = ["VectorHistory"]


class VectorHistory:
    """Stores vectors indexed by time instant, keeping the last ``depth``."""

    def __init__(self, x0: np.ndarray, depth: int) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        x0 = np.asarray(x0, dtype=np.float64)
        self.n = x0.shape[0]
        self.depth = int(depth)
        self._buf = np.zeros((self.depth, self.n))
        self._buf[0] = x0
        self.latest_instant = 0

    def push(self, x: np.ndarray, instant: int) -> None:
        """Record ``x`` as the state at ``instant`` (must advance by 1)."""
        if instant != self.latest_instant + 1:
            raise ValueError(
                f"instants must be consecutive: got {instant}, "
                f"expected {self.latest_instant + 1}"
            )
        self._buf[instant % self.depth] = x
        self.latest_instant = instant

    def _check(self, instant: int) -> None:
        if instant > self.latest_instant or instant < 0:
            raise KeyError(f"instant {instant} not recorded yet")
        if instant <= self.latest_instant - self.depth:
            raise KeyError(
                f"instant {instant} evicted (depth {self.depth}, "
                f"latest {self.latest_instant})"
            )

    def get(self, instant: int) -> np.ndarray:
        """Consistent snapshot at ``instant`` (a copy)."""
        self._check(instant)
        return self._buf[instant % self.depth].copy()

    def gather(self, instants: np.ndarray) -> np.ndarray:
        """Component-wise read: ``out[i] = x^{(instants[i])}[i]``.

        This is the full-async read — a vector whose components come
        from different time instants.
        """
        instants = np.asarray(instants, dtype=np.int64)
        if instants.shape != (self.n,):
            raise ValueError("need one instant per component")
        lo = int(instants.min())
        self._check(lo)
        self._check(int(instants.max()))
        return self._buf[instants % self.depth, np.arange(self.n)]

    def latest(self) -> np.ndarray:
        """The newest recorded vector (a copy)."""
        return self._buf[self.latest_instant % self.depth].copy()
