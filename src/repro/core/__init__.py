"""Asynchronous execution machinery — the paper's primary contribution.

- :mod:`repro.core.schedule`  — staleness schedules: per-grid update
  probabilities ``p_k ~ U[alpha, 1]``, read instants ``z_k(t)`` with
  monotone reads and maximum delay ``delta`` (Section III).
- :mod:`repro.core.history`   — ring-buffer history of iterates, the
  "memory" asynchronous grids read stale values from.
- :mod:`repro.core.models`    — the four asynchronous models: semi-
  async (Eq. 6), full-async solution-based (Eq. 7) and residual-based
  (Eq. 10) simulators.
- :mod:`repro.core.criteria`  — convergence Criterion 1 / Criterion 2
  (Section V).
- :mod:`repro.core.writes`    — lock-write / atomic-write / unsafe
  write policies for shared vectors (Section IV).
- :mod:`repro.core.engine`    — the sequential micro-step executor of
  Algorithm 5 (global-res and local-res) with deterministic seeding.
- :mod:`repro.core.threaded`  — the real-thread shared-memory executor
  (one worker per grid, Python ``threading``).
- :mod:`repro.core.parallel`  — the true-parallel executor (one worker
  *process* per thread-group over ``SharedMemory`` vectors; the GIL
  escape that makes wall-clock speedups measurable).
- :mod:`repro.core.perfmodel` — the discrete-event machine model that
  regenerates Table I / Fig 6 wall-clock shapes.
"""

from .schedule import StalenessSchedule, ScheduleParams
from .history import VectorHistory
from .models import (
    AsyncModelResult,
    simulate_semi_async,
    simulate_full_async_solution,
    simulate_full_async_residual,
)
from .criteria import Criterion1, Criterion2
from .writes import WritePolicy, LockWrite, AtomicWrite, UnsafeWrite, make_write_policy
from .engine import AsyncEngineResult, run_async_engine
from .threaded import run_threaded
from .parallel import (
    ProcsResult,
    SetupBundle,
    SharedVectors,
    run_procs,
)
from .perfmodel import MachineParams, PerfModel

__all__ = [
    "StalenessSchedule",
    "ScheduleParams",
    "VectorHistory",
    "AsyncModelResult",
    "simulate_semi_async",
    "simulate_full_async_solution",
    "simulate_full_async_residual",
    "Criterion1",
    "Criterion2",
    "WritePolicy",
    "LockWrite",
    "AtomicWrite",
    "UnsafeWrite",
    "make_write_policy",
    "AsyncEngineResult",
    "run_async_engine",
    "run_threaded",
    "ProcsResult",
    "SetupBundle",
    "SharedVectors",
    "run_procs",
    "MachineParams",
    "PerfModel",
]
