"""The asynchronous multigrid models of Section III, as simulators.

Three sequential simulators, each driving an additive solver
(:class:`~repro.solvers.base.AdditiveMultigrid`) through a random
staleness schedule:

- :func:`simulate_semi_async` — Eq. 6: every active grid reads a
  *consistent* snapshot ``x^{(z_k(t))}`` (all components from one past
  instant).  With consistent reads the solution-based and
  residual-based formulations coincide (the paper notes this), so
  there is a single semi-async simulator.
- :func:`simulate_full_async_solution` — Eq. 7: each *component* is
  read from its own instant ``z_ki(t)``; the correction is computed
  from ``b - A x_mixed``.
- :func:`simulate_full_async_residual` — Eq. 10: the same component
  mixing applied to a maintained residual history; corrections are
  computed directly from ``r_mixed``.

In every model the iterate and residual are *updated* exactly
(``x += sum of corrections``, ``r -= A (sum of corrections)``), so
``r^{(t)} = b - A x^{(t)}`` holds identically; asynchrony enters only
through what each grid *reads* — precisely the models' semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

import numpy as np

from ..linalg import two_norm
from ..resilience import FaultTelemetry
from .history import VectorHistory
from .schedule import ScheduleParams, StalenessSchedule

__all__ = [
    "AsyncModelResult",
    "simulate_semi_async",
    "simulate_full_async_solution",
    "simulate_full_async_residual",
]


@dataclass
class AsyncModelResult:
    """Outcome of an asynchronous-model simulation.

    Attributes
    ----------
    x:
        Final iterate.
    rel_residual:
        Final ``||b - A x||_2 / ||b||_2``.
    instants:
        Number of time instants simulated.
    corrections_per_grid:
        Updates each grid performed (== ``updates_per_grid`` for all).
    update_probabilities:
        The sampled ``p_k``.
    residual_trace:
        ``||r||/||b||`` recorded at each time instant (cheap here
        because the simulators maintain the exact residual).
    stalled / telemetry:
        The uniform result contract (RPR005).  The model simulators
        raise instead of stalling (a stuck schedule is a configuration
        error) and inject no faults, so these stay at their defaults.
    """

    x: np.ndarray
    rel_residual: float
    instants: int
    corrections_per_grid: np.ndarray
    update_probabilities: np.ndarray
    residual_trace: List[float] = field(default_factory=list)
    stalled: bool = False
    telemetry: FaultTelemetry = field(default_factory=FaultTelemetry)


def _finalize(
    solver: Any,
    x: np.ndarray,
    b: np.ndarray,
    sched: StalenessSchedule,
    t: int,
    trace: Optional[List[float]],
) -> AsyncModelResult:
    r = b - solver.A @ x
    nb = two_norm(b) or 1.0
    return AsyncModelResult(
        x=x,
        rel_residual=two_norm(r) / nb,
        instants=t,
        corrections_per_grid=sched.updates_done.copy(),
        update_probabilities=sched.p.copy(),
        residual_trace=trace,
    )


def _max_instants(params: ScheduleParams, sched: StalenessSchedule) -> int:
    # Worst case: the slowest grid fires with its (possibly overridden)
    # minimum probability; generous safety factor before declaring the
    # schedule stuck.
    return int(200 + 50 * params.updates_per_grid / float(sched.p.min()))


def simulate_semi_async(
    solver: Any,
    b: np.ndarray,
    params: ScheduleParams,
    x0: Optional[np.ndarray] = None,
    track_trace: bool = False,
    p_override: Optional[np.ndarray] = None,
    delta_by_grid: Optional[np.ndarray] = None,
) -> AsyncModelResult:
    """Semi-asynchronous model (Eq. 6).

    ``x^{(t+1)} = x^{(t)} + sum_{k in Psi(t)} B_k(x^{(z_k(t))})`` where
    ``B_k(x) = correction(k, b - A x)``.
    """
    n = solver.n
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    sched = StalenessSchedule(
        solver.ngrids, params, p_override=p_override, delta_by_grid=delta_by_grid
    )
    hist = VectorHistory(x, depth=sched.max_delta + 2)
    nb = two_norm(b) or 1.0
    trace: List[float] = []
    t = 0
    limit = _max_instants(params, sched)
    while not sched.all_done:
        if t >= limit:
            raise RuntimeError("schedule failed to finish; alpha too small?")
        active = sched.active_set(t)
        total = np.zeros(n)
        for k in active:
            z = sched.read_instant(int(k), t)
            x_read = hist.get(z)
            total += solver.correction(int(k), b - solver.A @ x_read)
            sched.record_update(int(k))
        x = x + total
        t += 1
        hist.push(x, t)
        if track_trace:
            trace.append(two_norm(b - solver.A @ x) / nb)
    return _finalize(solver, x, b, sched, t, trace)


def simulate_full_async_solution(
    solver: Any,
    b: np.ndarray,
    params: ScheduleParams,
    x0: Optional[np.ndarray] = None,
    track_trace: bool = False,
    p_override: Optional[np.ndarray] = None,
    delta_by_grid: Optional[np.ndarray] = None,
) -> AsyncModelResult:
    """Fully asynchronous, solution-based model (Eq. 7).

    Each active grid reads a component-mixed iterate
    ``(x_1^{(z_k1)}, ..., x_n^{(z_kn)})`` and corrects from
    ``b - A x_mixed``.
    """
    n = solver.n
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    sched = StalenessSchedule(
        solver.ngrids, params, p_override=p_override, delta_by_grid=delta_by_grid
    )
    hist = VectorHistory(x, depth=sched.max_delta + 2)
    nb = two_norm(b) or 1.0
    trace: List[float] = []
    t = 0
    limit = _max_instants(params, sched)
    while not sched.all_done:
        if t >= limit:
            raise RuntimeError("schedule failed to finish; alpha too small?")
        active = sched.active_set(t)
        total = np.zeros(n)
        for k in active:
            z = sched.read_instants(int(k), t, n)
            x_read = hist.gather(z)
            total += solver.correction(int(k), b - solver.A @ x_read)
            sched.record_update(int(k))
        x = x + total
        t += 1
        hist.push(x, t)
        if track_trace:
            trace.append(two_norm(b - solver.A @ x) / nb)
    return _finalize(solver, x, b, sched, t, trace)


def simulate_full_async_residual(
    solver: Any,
    b: np.ndarray,
    params: ScheduleParams,
    x0: Optional[np.ndarray] = None,
    track_trace: bool = False,
    p_override: Optional[np.ndarray] = None,
    delta_by_grid: Optional[np.ndarray] = None,
) -> AsyncModelResult:
    """Fully asynchronous, residual-based model (Eq. 10).

    The residual itself is the shared state: grids read component-mixed
    residuals ``(r_1^{(z_k1)}, ..., r_n^{(z_kn)})`` and the update is
    ``r^{(t+1)} = r^{(t)} - A sum_k C_k(r_mixed)``.  The iterate is
    co-updated with the same corrections so the reported relative
    residual is the true ``||b - A x||/||b||``.
    """
    n = solver.n
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - solver.A @ x
    sched = StalenessSchedule(
        solver.ngrids, params, p_override=p_override, delta_by_grid=delta_by_grid
    )
    hist = VectorHistory(r, depth=sched.max_delta + 2)
    nb = two_norm(b) or 1.0
    trace: List[float] = []
    t = 0
    limit = _max_instants(params, sched)
    while not sched.all_done:
        if t >= limit:
            raise RuntimeError("schedule failed to finish; alpha too small?")
        active = sched.active_set(t)
        total = np.zeros(n)
        for k in active:
            z = sched.read_instants(int(k), t, n)
            r_read = hist.gather(z)
            total += solver.correction(int(k), r_read)
            sched.record_update(int(k))
        x = x + total
        r = r - solver.A @ total
        t += 1
        hist.push(r, t)
        if track_trace:
            trace.append(two_norm(r) / nb)
    return _finalize(solver, x, b, sched, t, trace)
