"""Staleness schedules for the asynchronous models (Section III).

The paper's simulation framework:

- Each grid ``k`` has an update probability ``p_k`` drawn once per run
  from ``U[alpha, 1]``; ``k`` is in the active set ``Psi(t)`` at time
  instant ``t`` with probability ``p_k``.  Smaller ``alpha`` means more
  "out of sync" grids.
- When grid ``k`` updates at instant ``t`` it reads from instant
  ``z_k(t)`` (or per-component instants ``z_ki(t)`` for full-async),
  sampled uniformly from the admissible window: no older than the
  maximum read delay ``delta`` (``z >= t - delta``) and no older than
  what the grid has already read (monotone reads, ``z >= z_k(tau_k)``).
  With ``delta = 0`` the window collapses to ``{t}`` — reads are
  current, which is how Fig. 1 isolates the effect of ``alpha``.
- Each grid stops after ``updates_per_grid`` corrections; the run ends
  when every grid is done.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ScheduleParams", "StalenessSchedule"]


@dataclass(frozen=True)
class ScheduleParams:
    """Parameters of the asynchronous simulation schedule.

    Attributes
    ----------
    alpha:
        Minimum update probability, ``0 < alpha <= 1``.
    delta:
        Maximum read delay in time instants (``>= 0``).
    updates_per_grid:
        Corrections each grid performs before it stops (paper: 20).
    seed:
        Seed for both ``p_k`` and the read-instant sampling.
    """

    alpha: float = 0.1
    delta: int = 0
    updates_per_grid: int = 20
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.delta < 0:
            raise ValueError("delta must be non-negative")
        if self.updates_per_grid < 1:
            raise ValueError("updates_per_grid must be >= 1")


class StalenessSchedule:
    """Samples ``Psi(t)`` and the read instants ``z_k(t)`` / ``z_ki(t)``."""

    def __init__(
        self,
        ngrids: int,
        params: ScheduleParams,
        p_override: np.ndarray | None = None,
        delta_by_grid: np.ndarray | None = None,
    ) -> None:
        """``p_override`` fixes the update probabilities explicitly
        instead of sampling ``U[alpha, 1]`` — used to study the paper's
        conclusion that *unbalanced* correction counts (one grid far
        slower than the rest) destroy grid-size-independent
        convergence.

        ``delta_by_grid`` gives each grid its own maximum read delay
        (overriding ``params.delta``) — the distributed-memory model,
        where a grid's staleness is set by its network distance from
        the data rather than by a shared-memory bound."""
        if ngrids < 1:
            raise ValueError("need at least one grid")
        self.ngrids = ngrids
        self.params = params
        self._rng = np.random.default_rng(params.seed)
        if p_override is not None:
            p = np.asarray(p_override, dtype=np.float64)
            if p.shape != (ngrids,) or np.any(p <= 0) or np.any(p > 1):
                raise ValueError("p_override must be ngrids probabilities in (0, 1]")
            self.p = p
        else:
            # p_k ~ U[alpha, 1], fixed for the whole run (Section III).
            self.p = self._rng.uniform(params.alpha, 1.0, size=ngrids)
        if delta_by_grid is not None:
            d = np.asarray(delta_by_grid, dtype=np.int64)
            if d.shape != (ngrids,) or np.any(d < 0):
                raise ValueError("delta_by_grid must be ngrids non-negative ints")
            self.delta = d
        else:
            self.delta = np.full(ngrids, params.delta, dtype=np.int64)
        self.updates_done = np.zeros(ngrids, dtype=np.int64)
        # Last instant each grid read from (monotone-read constraint).
        self.last_read = np.zeros(ngrids, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def all_done(self) -> bool:
        return bool(np.all(self.updates_done >= self.params.updates_per_grid))

    def active_set(self, t: int) -> np.ndarray:
        """Grids updating at instant ``t`` (``Psi(t)``).

        Grids that already completed their update budget never
        reactivate; if every still-running grid fails its coin flip the
        instant is simply empty (the model allows ``Psi(t)`` to be
        empty).
        """
        running = self.updates_done < self.params.updates_per_grid
        flips = self._rng.uniform(size=self.ngrids) < self.p
        return np.flatnonzero(running & flips)

    @property
    def max_delta(self) -> int:
        """Largest per-grid delay (sizes the history ring buffer)."""
        return int(self.delta.max())

    def _window(self, k: int, t: int) -> tuple[int, int]:
        lo = max(int(self.last_read[k]), t - int(self.delta[k]), 0)
        return lo, t

    def read_instant(self, k: int, t: int) -> int:
        """Sample the scalar ``z_k(t)`` (semi-async) and advance ``tau_k``."""
        lo, hi = self._window(k, t)
        z = int(self._rng.integers(lo, hi + 1))
        self.last_read[k] = max(self.last_read[k], z)
        return z

    def read_instants(self, k: int, t: int, n: int) -> np.ndarray:
        """Sample per-component ``z_ki(t)`` (full-async).

        The monotone-read bookkeeping uses the *oldest* component read,
        so the window can only shrink over time, mirroring the paper's
        ``tau_k`` convention.
        """
        lo, hi = self._window(k, t)
        z = self._rng.integers(lo, hi + 1, size=n)
        self.last_read[k] = max(int(self.last_read[k]), int(z.min()))
        return z

    def record_update(self, k: int) -> None:
        """Count one completed correction for grid ``k``."""
        self.updates_done[k] += 1
