"""Real-thread shared-memory executor (the OpenMP substitute).

One Python thread per grid runs the Algorithm-5 loop against shared
NumPy arrays, with race handling delegated to the
:mod:`repro.core.writes` policies and stopping to the
:mod:`repro.core.criteria` criteria.  Under CPython's GIL the threads
interleave rather than truly overlap, so wall-clock speedups are *not*
meaningful here (the performance model covers that); what this executor
delivers is genuine nondeterministic asynchrony — real stale reads,
real partially-committed atomic writes, real Criterion-1/2 behaviour —
for the convergence experiments (Figs. 4/5 and the corrects/V-cycles
columns of Table I).

Threading notes (see DESIGN.md): the paper assigns *groups* of threads
to a grid and synchronizes inside the group; a GIL runtime gains
nothing from intra-grid thread groups, so each grid gets one worker and
the intra-grid barriers are implicit in its sequential kernel calls.
The grid-to-thread *work partition* still matters for the performance
model and is computed there.
"""

from __future__ import annotations

import threading
import time as _time
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, List, Optional

import numpy as np

from .. import kernels
from ..linalg import two_norm
from ..resilience import FaultInjector, FaultPlan, FaultTelemetry, Guard, GuardPolicy
from .criteria import Criterion1, Criterion2
from .writes import WritePolicy, make_write_policy

if TYPE_CHECKING:  # runtime import would cycle through repro.observe
    from ..observe.live import LiveConfig, LiveSummary
    from ..observe.tracer import TracedPolicy, Tracer, TraceSummary

__all__ = ["ThreadedResult", "run_threaded"]

_RESCOMP = ("local", "global", "rupdate")

#: The failure classes a worker's numerical kernel can actually raise
#: (replacing the old blanket ``except Exception``).  Anything outside
#: this set escapes to ``threading.excepthook`` — an unknown exception
#: type should be loudly fatal, not silently folded into a result.
_WORKER_ERRORS = (
    ArithmeticError,
    AttributeError,
    LookupError,
    MemoryError,
    RuntimeError,
    TypeError,
    ValueError,
    np.linalg.LinAlgError,
)


@dataclass
class ThreadedResult:
    """Outcome of a threaded asynchronous run."""

    x: np.ndarray
    rel_residual: float
    counts: np.ndarray
    wall_time: float
    diverged: bool = False
    errors: List[str] = field(default_factory=list)
    residual_samples: List[tuple] = field(default_factory=list)
    """``(wall_seconds, rel_residual)`` sampled by the monitor thread
    when ``monitor_interval`` was set — the paper's residual-vs-time
    measurement (taken outside the solve path, like its timestamping)."""
    stalled: bool = False
    """True when the run ended (supervisor stop or timeout) without
    satisfying its stopping criterion — e.g. a worker fail-stopped and
    no restart budget remained."""
    telemetry: FaultTelemetry = field(default_factory=FaultTelemetry)
    """Injected-fault and guard-action counters (zero when fault-free)."""
    trace_summary: Optional["TraceSummary"] = None
    """Compact digest of the recorded trace when the run was handed a
    :class:`~repro.observe.Tracer` (None otherwise)."""
    kernel_backend: str = "numpy"
    """Active :mod:`repro.kernels` backend the run executed with."""
    live_summary: Optional["LiveSummary"] = None
    """Live-telemetry digest (snapshots, alerts, profile) when the run
    was configured with ``live=LiveConfig(...)`` (None otherwise)."""

    @property
    def corrects(self) -> float:
        return float(self.counts.mean())


def run_threaded(
    solver: Any,
    b: np.ndarray,
    tmax: int = 20,
    rescomp: str = "local",
    write: str = "lock",
    criterion: str = "criterion1",
    stripe: int = 1024,
    x0: Optional[np.ndarray] = None,
    divergence_threshold: float = 1e6,
    timeout: float = 600.0,
    monitor_interval: Optional[float] = None,
    faults: Optional[FaultPlan] = None,
    guard: Optional[GuardPolicy] = None,
    policy_wrapper: Optional[Callable[[WritePolicy], WritePolicy]] = None,
    tracer: Optional["Tracer"] = None,
    live: Optional["LiveConfig"] = None,
) -> ThreadedResult:
    """Run asynchronous additive multigrid with real threads.

    Parameters mirror :func:`repro.core.engine.run_async_engine`;
    ``write`` additionally accepts ``"unsafe"`` for the lost-update
    ablation.  ``timeout`` bounds the whole run's wall-clock; worker
    liveness is additionally tracked *per worker* by a supervisor loop
    (heartbeat timestamps), replacing the old single sequential
    ``join`` — a crashed or hung worker is noticed within
    ``guard.watchdog_timeout`` seconds rather than after every other
    worker has been joined.  ``monitor_interval`` (in seconds) starts a
    sampling thread recording the true relative residual over
    wall-clock time into ``residual_samples`` — the paper's
    residual-vs-time measurement, taken outside the solve loop so it
    adds no synchronization (its racy reads only blur samples).

    ``faults`` injects real-thread faults (fail-stop worker deaths,
    ``time.sleep`` stalls, correction corruption; stall durations are
    seconds).  ``guard`` screens corrections, checkpoints/rolls back
    the shared iterate from the supervisor, and restarts dead workers
    re-synced from the current shared state.

    ``policy_wrapper`` decorates each shared-vector write policy after
    construction (applied to the iterate's policy first, then the
    residual's) — the hook
    :class:`repro.analysis.racecheck.CheckedWrite` uses to instrument
    a run with happens-before checking without changing its
    synchronization.

    ``tracer`` is the parallel observability hook: both shared-vector
    policies are wrapped in
    :class:`~repro.observe.TracedPolicy` (outside ``policy_wrapper``,
    delegating to it, so both hooks compose), each worker records into
    its own per-thread ring buffer (no cross-thread locking on the hot
    path), and the merged digest lands on ``result.trace_summary``.
    Event times are wall seconds from the run's start.

    ``live`` (a :class:`~repro.observe.live.LiveConfig`) starts the
    streaming snapshot collector alongside the run: a scrape endpoint
    (``metrics_port``), a JSONL snapshot stream, optional sampling
    profiler, and the online anomaly detectors.  Implies tracing (a
    wall-clock tracer is created when none was given) and turns the
    residual monitor on at the snapshot cadence when
    ``monitor_interval`` is unset.  The collector only *samples* —
    solve threads never see it — so algorithmic behaviour is
    unchanged.  An ``alert_stop`` alert sets the run's stop event; the
    aborted run is reported ``stalled`` (never ``diverged`` unless the
    residual actually blew up).  Digest lands on
    ``result.live_summary``.
    """
    if rescomp not in _RESCOMP:
        raise ValueError(f"rescomp must be one of {_RESCOMP}")
    if live is not None and tracer is None:
        from ..observe.tracer import Tracer as _Tracer

        tracer = _Tracer(clock="s")
    if live is not None and monitor_interval is None:
        monitor_interval = live.interval_s  # detectors need residuals
    n = solver.n
    ngrids = solver.ngrids
    A = solver.A

    crit = (
        Criterion1(ngrids, tmax)
        if criterion == "criterion1"
        else Criterion2(ngrids, tmax)
    )
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - A @ x

    xpol = make_write_policy(write, n, **({"stripe": stripe} if write == "atomic" else {}))
    rpol = make_write_policy(write, n, **({"stripe": stripe} if write == "atomic" else {}))
    if policy_wrapper is not None:
        xpol = policy_wrapper(xpol)
        rpol = policy_wrapper(rpol)
    traced_x: Optional["TracedPolicy"] = None
    if tracer is not None:
        # Imported lazily: repro.observe imports repro.core.writes, so a
        # module-level import here would be circular.
        from ..observe.tracer import TracedPolicy as _TracedPolicy

        traced_x = _TracedPolicy(xpol, tracer, "x")
        xpol = traced_x
        rpol = _TracedPolicy(rpol, tracer, "r")

    # Row ownership for the global-res no-wait parfor (work shares).
    work = solver.work_per_grid()
    shares = np.maximum(work / work.sum(), 1e-6)
    cuts = np.concatenate([[0.0], np.cumsum(shares) / shares.sum()])
    row_bounds = np.round(cuts * n).astype(np.int64)
    rows = [(int(row_bounds[k]), int(row_bounds[k + 1])) for k in range(ngrids)]

    stop_event = threading.Event()
    errors: List[str] = []
    errors_lock = threading.Lock()
    nb = two_norm(b) or 1.0

    telemetry = FaultTelemetry()
    # Single-writer telemetry shards: each worker bumps only its own,
    # merged into `telemetry` once at run end — no lock per bump.
    shards = [FaultTelemetry() for _ in range(ngrids)]
    injector = (
        FaultInjector(faults, ngrids)
        if faults is not None and faults.active
        else None
    )
    grd = Guard(guard, nb, telemetry) if guard is not None else None

    # Per-kernel attribution: a traced run times every kernel call so
    # the trace can say where the workers' wall time went.
    stats_were_on = False
    kstats0: dict = {}
    if tracer is not None:
        stats_were_on = kernels.enable_stats(True)
        kstats0 = kernels.stats()

    t0 = _time.perf_counter()
    if tracer is not None:
        tracer.restart_clock()  # event times = seconds since run start
    live_session = None
    if live is not None:
        from ..observe.live import start_live

        def _alert_stop() -> None:
            # Stop first: the counter bump must never delay (or, if it
            # ever raises, prevent) the abort itself.
            stop_event.set()
            telemetry.bump("alert_stops")

        assert tracer is not None
        live_session = start_live(
            live, tracer, backend="threaded", stop_callback=_alert_stop
        )
    deadline = t0 + timeout
    # Per-worker liveness: workers stamp their heartbeat each loop
    # iteration; the supervisor declares a worker hung/dead from these
    # instead of blocking in one long join.
    heartbeats = [t0] * ngrids

    def worker(k: int, resync: bool = False) -> None:
        if tracer is not None:
            tracer.register_worker(k)
        shard = shards[k]
        # A restarted worker re-syncs from the shared iterate instead
        # of assuming the initial residual b (its replica is gone).
        r_local = (b - A @ xpol.read(x)) if resync else b.copy()
        # Worker-owned steady-state buffers (one allocation per worker,
        # zero per iteration): the recomputed residual, the A·e product
        # for rupdate, the owned-row refresh slice for global-res, and
        # the zero correction substituted for guard-rejected updates.
        # The kernel layer fills these in place; buffers are never
        # shared across workers, so no synchronization is needed.
        r_buf = np.empty(n, dtype=np.float64)
        de_buf = np.empty(n, dtype=np.float64) if rescomp == "rupdate" else None
        lo_k, hi_k = rows[k]
        fresh_buf = (
            np.empty(hi_k - lo_k, dtype=np.float64)
            if rescomp == "global" and hi_k > lo_k
            else None
        )
        zeros_e = np.zeros(n, dtype=np.float64) if grd is not None else None
        try:
            while not crit.grid_done(k) and not stop_event.is_set():
                heartbeats[k] = _time.perf_counter()
                if injector is not None:
                    completed = int(crit.counts[k])
                    if injector.crash_due(k, completed):
                        shard.bump("injected_crashes")
                        if tracer is not None:
                            tracer.record_here("fault", tag="crash")
                        return  # fail-stop: the thread just dies
                    dur = injector.stall_due(k, completed)
                    if dur is not None:
                        shard.bump("injected_stalls")
                        if tracer is not None:
                            tracer.record_here("fault", a=float(dur), tag="stall")
                        _time.sleep(
                            min(float(dur), max(0.0, deadline - _time.perf_counter()))
                        )
                if tracer is not None:
                    tracer.record_here("correct_begin", a=float(crit.counts[k]) + 1.0)
                e = solver.correction(k, r_local)
                if injector is not None:
                    e = injector.corrupt(e, shard)
                if grd is not None:
                    screened = grd.screen(e, telemetry=shard)
                    if screened is None:
                        # Rejected correction: substitute the cached
                        # zero vector (read-only by construction).
                        assert zeros_e is not None
                        e = zeros_e
                    else:
                        e = screened
                xpol.add(x, e)
                if rescomp == "rupdate":
                    assert de_buf is not None
                    kernels.range_matvec(A, e, 0, n, out=de_buf)
                    np.negative(de_buf, out=de_buf)
                    rpol.add(r, de_buf)
                    r_local = rpol.read(r)
                elif rescomp == "local":
                    x_loc = xpol.read(x)
                    r_local = kernels.range_residual(A, x_loc, b, 0, n, out=r_buf)
                else:  # global
                    x_loc = xpol.read(x)
                    if fresh_buf is not None:
                        kernels.range_residual(A, x_loc, b, lo_k, hi_k, out=fresh_buf)
                        rpol.assign_slice(r, lo_k, hi_k, fresh_buf)
                    r_local = rpol.read(r)
                crit.record(k)
                heartbeats[k] = _time.perf_counter()
                # Divergence guard on the *local* view — no extra sync.
                m = float(np.abs(r_local).max()) if n else 0.0
                if tracer is not None:
                    tracer.record_here(
                        "correct_end",
                        a=float(crit.counts[k]),
                        b=traced_x.last_staleness() if traced_x is not None else -1.0,
                    )
                    tracer.record_here(
                        "residual", a=float(two_norm(r_local) / nb), tag="local"
                    )
                if not np.isfinite(m) or m > divergence_threshold * max(nb, 1.0):
                    stop_event.set()
        except _WORKER_ERRORS:
            # Record the full traceback, not just str(exc): a worker
            # dies on another thread's stack, so this is the only
            # diagnosable record of where it failed.
            with errors_lock:
                errors.append(f"grid {k}:\n{traceback.format_exc()}")
            stop_event.set()

    threads = [
        threading.Thread(target=worker, args=(k,), daemon=True) for k in range(ngrids)
    ]

    samples: List[tuple] = []
    monitor_stop = threading.Event()

    def monitor(t_start: float) -> None:
        while not monitor_stop.is_set():
            now = _time.perf_counter() - t_start
            # Racy read (sampling only); the kernel writes into the
            # monitor thread's own scratch, so no allocation per sample.
            rel_s = kernels.residual_norm(A, x, b) / nb
            samples.append((now, float(rel_s)))
            if tracer is not None:
                tracer.record(
                    "residual", -1, now, float(rel_s), 0.0, "global", worker="monitor"
                )
            monitor_stop.wait(monitor_interval)

    mon = None
    if monitor_interval is not None:
        if monitor_interval <= 0:
            raise ValueError("monitor_interval must be positive")
        mon = threading.Thread(target=monitor, args=(t0,), daemon=True)
        mon.start()
    for th in threads:
        th.start()

    # ------------------------------------------------------------------
    # Supervisor loop: per-worker liveness, restart, checkpoint/rollback.
    # Replaces the old sequential join(timeout) per thread, whose worst
    # case waited ngrids * timeout and could not tell *which* worker was
    # stuck.
    # ------------------------------------------------------------------
    dead = [False] * ngrids  # exited without meeting the criterion, no restart
    hung_flagged = [False] * ngrids
    stalled = False
    poll_s = 0.002
    next_ckpt = (
        t0 + guard.checkpoint_period_s if grd is not None else float("inf")
    )
    while _time.perf_counter() < deadline:
        if crit.all_done() or stop_event.is_set():
            break
        now = _time.perf_counter()
        for k in range(ngrids):
            th = threads[k]
            if th.is_alive():
                # Hung-worker watchdog: alive but silent past the
                # per-worker timeout.
                if (
                    grd is not None
                    and guard.watchdog
                    and not hung_flagged[k]
                    and not crit.grid_done(k)
                    and now - heartbeats[k] > guard.watchdog_timeout
                ):
                    hung_flagged[k] = True
                    telemetry.bump("watchdog_detections")
                    if tracer is not None:
                        tracer.record("guard", k, now - t0, tag="watchdog", worker="supervisor")
                continue
            if crit.grid_done(k) or dead[k]:
                continue
            # Worker exited early (fail-stop): restart while the
            # budget lasts, re-synced from the shared state.
            telemetry.bump("watchdog_detections")
            if tracer is not None:
                tracer.record("guard", k, now - t0, tag="watchdog", worker="supervisor")
            if grd is not None and grd.try_restart():
                if tracer is not None:
                    tracer.record("guard", k, now - t0, tag="restart", worker="supervisor")
                if guard.restart_delay:
                    _time.sleep(guard.restart_delay)
                threads[k] = threading.Thread(
                    target=worker, args=(k, True), daemon=True
                )
                heartbeats[k] = _time.perf_counter()
                threads[k].start()
            else:
                dead[k] = True
        if any(dead):
            # A permanently dead grid can never satisfy the criterion;
            # stop the survivors instead of spinning to the deadline.
            stalled = True
            stop_event.set()
            break
        if not any(th.is_alive() for th in threads):
            break
        if grd is not None and now >= next_ckpt:
            x_snap = xpol.read(x)
            rel_now = float(kernels.residual_norm(A, x_snap, b) / nb)
            action, x_restore = grd.checkpoint_or_rollback(x_snap, rel_now)
            if tracer is not None and action != "none":
                tracer.record(
                    "guard", -1, _time.perf_counter() - t0, tag=action, worker="supervisor"
                )
            if action == "rollback":
                xpol.assign_slice(x, 0, n, x_restore)
                rpol.assign_slice(
                    r,
                    0,
                    n,
                    kernels.range_residual(
                        A, x_restore, b, 0, n, out=kernels.scratch(n, slot=5)
                    ),
                )
            next_ckpt = _time.perf_counter() + guard.checkpoint_period_s
        _time.sleep(poll_s)

    timed_out = _time.perf_counter() >= deadline and any(
        th.is_alive() for th in threads
    )
    if timed_out or stalled:
        stop_event.set()
    for th in threads:
        th.join(timeout=5.0)
    wall = _time.perf_counter() - t0
    if mon is not None:
        monitor_stop.set()
        mon.join(timeout=5.0)
    for shard in shards:  # single merge path for worker telemetry
        telemetry.merge(shard)

    rel = kernels.residual_norm(A, x, b) / nb
    alert_stopped = live_session is not None and live_session.stop_requested
    diverged = (
        (
            stop_event.is_set()
            and not timed_out
            and not stalled
            and not alert_stopped
            and not errors
        )
        or not np.isfinite(rel)
        or rel > divergence_threshold
    )
    if (
        not diverged
        and (timed_out or alert_stopped or (faults is not None and faults.active))
        and not crit.all_done()
    ):
        stalled = True
    stalled = stalled and not diverged
    if tracer is not None:
        for kname, (calls, secs) in sorted(kernels.stats_delta(kstats0).items()):
            tracer.record("kernel", -1, wall, float(secs), float(calls), kname)
        kernels.enable_stats(stats_were_on)
    # Final collection + teardown before the summary so alert events
    # recorded by the collector are part of the merged trace.
    live_summary = live_session.finish() if live_session is not None else None
    return ThreadedResult(
        x=x,
        rel_residual=rel,
        counts=crit.counts.copy(),
        wall_time=wall,
        diverged=bool(diverged),
        errors=errors,
        residual_samples=samples,
        stalled=bool(stalled),
        telemetry=telemetry,
        trace_summary=tracer.summary() if tracer is not None else None,
        kernel_backend=kernels.current_backend(),
        live_summary=live_summary,
    )
