"""Real-thread shared-memory executor (the OpenMP substitute).

One Python thread per grid runs the Algorithm-5 loop against shared
NumPy arrays, with race handling delegated to the
:mod:`repro.core.writes` policies and stopping to the
:mod:`repro.core.criteria` criteria.  Under CPython's GIL the threads
interleave rather than truly overlap, so wall-clock speedups are *not*
meaningful here (the performance model covers that); what this executor
delivers is genuine nondeterministic asynchrony — real stale reads,
real partially-committed atomic writes, real Criterion-1/2 behaviour —
for the convergence experiments (Figs. 4/5 and the corrects/V-cycles
columns of Table I).

Threading notes (see DESIGN.md): the paper assigns *groups* of threads
to a grid and synchronizes inside the group; a GIL runtime gains
nothing from intra-grid thread groups, so each grid gets one worker and
the intra-grid barriers are implicit in its sequential kernel calls.
The grid-to-thread *work partition* still matters for the performance
model and is computed there.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..linalg import two_norm
from .criteria import Criterion1, Criterion2
from .writes import make_write_policy

__all__ = ["ThreadedResult", "run_threaded"]

_RESCOMP = ("local", "global", "rupdate")


@dataclass
class ThreadedResult:
    """Outcome of a threaded asynchronous run."""

    x: np.ndarray
    rel_residual: float
    counts: np.ndarray
    wall_time: float
    diverged: bool = False
    errors: List[str] = field(default_factory=list)
    residual_samples: List[tuple] = field(default_factory=list)
    """``(wall_seconds, rel_residual)`` sampled by the monitor thread
    when ``monitor_interval`` was set — the paper's residual-vs-time
    measurement (taken outside the solve path, like its timestamping)."""

    @property
    def corrects(self) -> float:
        return float(self.counts.mean())


def _rows_matvec(A, x: np.ndarray, lo: int, hi: int) -> np.ndarray:
    p0, p1 = A.indptr[lo], A.indptr[hi]
    seg = A.data[p0:p1] * x[A.indices[p0:p1]]
    local = np.repeat(np.arange(hi - lo), np.diff(A.indptr[lo : hi + 1]))
    return np.bincount(local, weights=seg, minlength=hi - lo)


def run_threaded(
    solver,
    b: np.ndarray,
    tmax: int = 20,
    rescomp: str = "local",
    write: str = "lock",
    criterion: str = "criterion1",
    stripe: int = 1024,
    x0: Optional[np.ndarray] = None,
    divergence_threshold: float = 1e6,
    timeout: float = 600.0,
    monitor_interval: Optional[float] = None,
) -> ThreadedResult:
    """Run asynchronous additive multigrid with real threads.

    Parameters mirror :func:`repro.core.engine.run_async_engine`;
    ``write`` additionally accepts ``"unsafe"`` for the lost-update
    ablation.  ``timeout`` bounds the wall-clock wait for stragglers
    (a diverged run whose corrections overflow is cut short by the
    divergence guard inside each worker).  ``monitor_interval`` (in
    seconds) starts a sampling thread recording the true relative
    residual over wall-clock time into ``residual_samples`` — the
    paper's residual-vs-time measurement, taken outside the solve loop
    so it adds no synchronization (its racy reads only blur samples).
    """
    if rescomp not in _RESCOMP:
        raise ValueError(f"rescomp must be one of {_RESCOMP}")
    n = solver.n
    ngrids = solver.ngrids
    A = solver.A

    crit = (
        Criterion1(ngrids, tmax)
        if criterion == "criterion1"
        else Criterion2(ngrids, tmax)
    )
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - A @ x

    xpol = make_write_policy(write, n, **({"stripe": stripe} if write == "atomic" else {}))
    rpol = make_write_policy(write, n, **({"stripe": stripe} if write == "atomic" else {}))

    # Row ownership for the global-res no-wait parfor (work shares).
    work = solver.work_per_grid()
    shares = np.maximum(work / work.sum(), 1e-6)
    cuts = np.concatenate([[0.0], np.cumsum(shares) / shares.sum()])
    row_bounds = np.round(cuts * n).astype(np.int64)
    rows = [(int(row_bounds[k]), int(row_bounds[k + 1])) for k in range(ngrids)]

    stop_event = threading.Event()
    errors: List[str] = []
    errors_lock = threading.Lock()
    nb = two_norm(b) or 1.0

    def worker(k: int) -> None:
        r_local = b.copy()
        try:
            while not crit.grid_done(k) and not stop_event.is_set():
                e = solver.correction(k, r_local)
                xpol.add(x, e)
                if rescomp == "rupdate":
                    rpol.add(r, -(A @ e))
                    r_local = rpol.read(r)
                elif rescomp == "local":
                    x_loc = xpol.read(x)
                    r_local = b - A @ x_loc
                else:  # global
                    x_loc = xpol.read(x)
                    lo, hi = rows[k]
                    if hi > lo:
                        fresh = b[lo:hi] - _rows_matvec(A, x_loc, lo, hi)
                        rpol.assign_slice(r, lo, hi, fresh)
                    r_local = rpol.read(r)
                crit.record(k)
                # Divergence guard on the *local* view — no extra sync.
                m = float(np.abs(r_local).max()) if n else 0.0
                if not np.isfinite(m) or m > divergence_threshold * max(nb, 1.0):
                    stop_event.set()
        except Exception as exc:  # pragma: no cover - surfaced in result
            with errors_lock:
                errors.append(f"grid {k}: {exc!r}")
            stop_event.set()

    threads = [threading.Thread(target=worker, args=(k,), daemon=True) for k in range(ngrids)]
    import time as _time

    samples: List[tuple] = []
    monitor_stop = threading.Event()

    def monitor(t_start: float) -> None:
        while not monitor_stop.is_set():
            now = _time.perf_counter() - t_start
            rel_s = two_norm(b - A @ x) / nb  # racy read: sampling only
            samples.append((now, float(rel_s)))
            monitor_stop.wait(monitor_interval)

    t0 = _time.perf_counter()
    mon = None
    if monitor_interval is not None:
        if monitor_interval <= 0:
            raise ValueError("monitor_interval must be positive")
        mon = threading.Thread(target=monitor, args=(t0,), daemon=True)
        mon.start()
    for th in threads:
        th.start()
    for th in threads:
        th.join(timeout=timeout)
    wall = _time.perf_counter() - t0
    if mon is not None:
        monitor_stop.set()
        mon.join(timeout=5.0)
    timed_out = any(th.is_alive() for th in threads)
    if timed_out:
        stop_event.set()
        for th in threads:
            th.join(timeout=5.0)

    rel = two_norm(b - A @ x) / nb
    diverged = (
        (stop_event.is_set() and not timed_out and not errors)
        or not np.isfinite(rel)
        or rel > divergence_threshold
    )
    return ThreadedResult(
        x=x,
        rel_residual=rel,
        counts=crit.counts.copy(),
        wall_time=wall,
        diverged=bool(diverged),
        errors=errors,
        residual_samples=samples,
    )
