"""Sequential micro-step executor for Algorithm 5.

This engine runs the paper's shared-memory asynchronous multigrid
(Algorithm 5) *deterministically*: every grid is a coroutine whose
yield points are exactly the grid-local synchronization boundaries of
the algorithm (write ``x``, read ``x``, refresh/read ``r``), and a
seeded scheduler interleaves the coroutines one micro-step at a time.
Real threads (see :mod:`repro.core.threaded`) give true asynchrony but
irreproducible interleavings; this engine gives the same *semantics*
with replayable randomness, which is what the convergence benchmarks
need (the paper averages 20 runs for the same reason).

Semantics mapped from Section IV:

- ``rescomp="local"`` — local-res: a grid reads the shared ``x`` and
  recomputes its own fine-grid residual (Algorithm 5 line 13).
- ``rescomp="global"`` — global-res: a shared residual vector is
  refreshed piecewise; each grid's no-wait global-parfor share is the
  block of rows its threads own, so rows owned by slow grids go stale
  (Algorithm 5 lines 15-18) — the mechanism behind global-res's slower
  convergence in Fig. 4/5.
- ``rescomp="rupdate"`` — the r-Multadd variant (last bullet of the
  Algorithm 5 discussion): the shared residual is updated incrementally
  as ``r -= A e`` whenever a correction ``e`` is written.

Write policies:

- ``write="lock"`` — a grid's whole update (and a reader's whole
  snapshot) happens in one micro-step: consistent vectors.  local-res +
  lock is the only combination modeled by *semi*-async (Eq. 6), as the
  paper notes; everything else is full-async.
- ``write="atomic"`` — updates and reads are split into ``nchunks``
  chunk micro-steps that interleave with other grids' steps: readers
  observe partially-committed updates (element-consistent, vector-
  inconsistent) — the full-async component mixing of Eq. 7/10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, List, Optional, Tuple

import numpy as np

from .. import kernels
from ..linalg import two_norm
from ..resilience import FaultInjector, FaultPlan, FaultTelemetry, Guard, GuardPolicy
from .criteria import Criterion1, Criterion2

if TYPE_CHECKING:  # runtime import would cycle through repro.observe
    from ..observe.live import LiveConfig, LiveSummary
    from ..observe.tracer import Tracer, TraceSummary

__all__ = ["AsyncEngineResult", "run_async_engine"]

_RESCOMP = ("local", "global", "rupdate")
_WRITE = ("lock", "atomic")


@dataclass
class AsyncEngineResult:
    """Outcome of a sequential Algorithm-5 run.

    ``corrects`` follows the paper's Table-I definition: the average
    number of corrections per grid.  ``vcycles`` is the configured
    ``tmax`` (one "V-cycle" = one correction from every grid).
    """

    x: np.ndarray
    rel_residual: float
    counts: np.ndarray
    micro_steps: int
    speeds: np.ndarray
    diverged: bool = False
    residual_trace: List[float] = field(default_factory=list)
    activity_trace: List[Tuple[int, int, int]] = field(default_factory=list)
    """``(grid, start_microstep, end_microstep)`` spans of each
    correction in scheduler (logical) time — render with
    :func:`repro.utils.ascii_timeline` to see the interleaving."""
    checkpoint_results: List[Tuple[int, float, float]] = field(default_factory=list)
    """``(vcycles, rel_residual, corrects)`` at each requested checkpoint.

    Valid with criterion 2, where a longer run passes through exactly
    the states of shorter runs: the snapshot at ``min(counts) == c`` is
    what a run with ``tmax = c`` would have produced."""
    stalled: bool = False
    """True when a fault-injected run ended without satisfying its
    stopping criterion (a permanently dead grid under criterion 2, or a
    stall past the micro-step budget) — the paper's "no deadlock"
    claim shows up here as a stalled-but-finite run, never a hang."""
    telemetry: FaultTelemetry = field(default_factory=FaultTelemetry)
    """Injected-fault and guard-action counters (all zero for a
    fault-free run)."""
    trace_summary: Optional["TraceSummary"] = None
    """Compact digest of the recorded trace when the run was handed a
    :class:`~repro.observe.Tracer` (None otherwise)."""
    kernel_backend: str = "numpy"
    """Active :mod:`repro.kernels` backend the run executed with."""
    live_summary: Optional["LiveSummary"] = None
    """Live-telemetry digest (snapshots, alerts, profile) when the run
    was configured with ``live=LiveConfig(...)`` (None otherwise)."""

    @property
    def corrects(self) -> float:
        return float(self.counts.mean())


def _grid_coroutine(
    solver: Any,
    k: int,
    b: np.ndarray,
    rescomp: str,
    nchunks: int,
    n: int,
    rows: Tuple[int, int],
    correction_fn: Optional[Callable[[int, np.ndarray], np.ndarray]] = None,
    r0: Optional[np.ndarray] = None,
) -> Generator:
    """Coroutine for grid ``k``; yields (op, payload) micro-steps.

    Ops understood by the scheduler:
      ("add_x", lo, hi, values)   -- commit a chunk of the correction
      ("add_r", lo, hi, values)   -- commit a chunk of -A e (rupdate)
      ("read_x", lo, hi)          -- receive x[lo:hi] via gen.send
      ("read_r", lo, hi)          -- receive r[lo:hi] via gen.send
      ("refresh_r", lo, hi, vals) -- global-res row refresh
      ("done_correction",)        -- bookkeeping barrier
    """
    bounds = np.linspace(0, n, nchunks + 1).astype(np.int64)
    chunks = [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(nchunks)
        if bounds[i + 1] > bounds[i]
    ]

    correct = solver.correction if correction_fn is None else correction_fn
    # Initialize r^k = b (Algorithm 5 line 1); a restarted grid is
    # re-synced with the residual of the shared iterate instead.
    r_local = b.copy() if r0 is None else np.array(r0, dtype=np.float64)
    # Steady-state buffers, allocated once per coroutine: the iterate
    # snapshot, the recomputed residual, and (mode-dependent) the A·e
    # product / owned-row refresh slice.  The kernel layer fills these
    # in place, so the correction loop below allocates nothing per
    # iteration.  Buffer reuse across yields is safe because at most
    # one micro-op per grid is pending and the scheduler consumes its
    # payload before resuming the coroutine.
    x_buf = np.empty(n, dtype=np.float64)
    r_buf = np.empty(n, dtype=np.float64)
    de_buf = np.empty(n, dtype=np.float64) if rescomp == "rupdate" else None
    lo_r, hi_r = rows
    fresh_buf = (
        np.empty(hi_r - lo_r, dtype=np.float64)
        if rescomp == "global" and hi_r > lo_r
        else None
    )
    while True:
        e = correct(k, r_local)
        # --- write the correction to the shared iterate -------------
        for lo, hi in chunks:
            yield ("add_x", lo, hi, e[lo:hi])
        if rescomp == "rupdate":
            assert de_buf is not None
            kernels.range_matvec(solver.A, e, 0, n, out=de_buf)
            np.negative(de_buf, out=de_buf)
            for lo, hi in chunks:
                yield ("add_r", lo, hi, de_buf[lo:hi])
        # --- obtain the next residual -------------------------------
        if rescomp == "local":
            for lo, hi in chunks:
                x_buf[lo:hi] = yield ("read_x", lo, hi)
            r_local = kernels.range_residual(solver.A, x_buf, b, 0, n, out=r_buf)
        elif rescomp == "global":
            # No-wait global parfor share: refresh only our own rows
            # of the shared residual from the current shared iterate.
            for lo, hi in chunks:
                x_buf[lo:hi] = yield ("read_x", lo, hi)
            if fresh_buf is not None:
                kernels.range_residual(solver.A, x_buf, b, lo_r, hi_r, out=fresh_buf)
                yield ("refresh_r", lo_r, hi_r, fresh_buf)
            for lo, hi in chunks:
                r_buf[lo:hi] = yield ("read_r", lo, hi)
            r_local = r_buf
        else:  # rupdate
            for lo, hi in chunks:
                r_buf[lo:hi] = yield ("read_r", lo, hi)
            r_local = r_buf
        yield ("done_correction",)


def run_async_engine(
    solver: Any,
    b: np.ndarray,
    tmax: int = 20,
    rescomp: str = "local",
    write: str = "lock",
    criterion: str = "criterion1",
    alpha: float = 0.1,
    nchunks: int = 8,
    seed: int = 0,
    x0: Optional[np.ndarray] = None,
    divergence_threshold: float = 1e6,
    track_trace: bool = False,
    checkpoints: Optional[List[int]] = None,
    faults: Optional[FaultPlan] = None,
    guard: Optional[GuardPolicy] = None,
    tracer: Optional["Tracer"] = None,
    live: Optional["LiveConfig"] = None,
) -> AsyncEngineResult:
    """Run asynchronous additive multigrid (Algorithm 5), sequentially.

    Parameters
    ----------
    solver:
        An :class:`~repro.solvers.base.AdditiveMultigrid` (Multadd or
        AFACx).
    rescomp:
        ``"local"``, ``"global"`` or ``"rupdate"`` (see module docs).
    write:
        ``"lock"`` or ``"atomic"``.
    criterion:
        ``"criterion1"`` or ``"criterion2"`` (Section V).
    alpha:
        Minimum relative speed of a grid: per-grid scheduler weights
        are drawn from ``U[alpha, 1]`` — the engine's analogue of the
        models' minimum update probability.
    nchunks:
        Chunk count for atomic-write interleaving (ignored for lock).
    checkpoints:
        Sorted V-cycle counts at which to snapshot ``(relres,
        corrects)`` — requires ``criterion="criterion2"`` (grids keep
        correcting, so a long run's prefix equals a shorter run).  Used
        by the Table-I harness to sweep tolerance crossings in one run.
    faults:
        Optional :class:`~repro.resilience.FaultPlan`.  Injection is
        seeded and happens at micro-step granularity: corruption when a
        grid's correction is computed, crashes and stalls at its
        ``done_correction`` boundary (stall durations are micro-steps).
        The run stays deterministic: same solver/seeds/plan, same run.
    guard:
        Optional :class:`~repro.resilience.GuardPolicy`.  Screens every
        correction before it is committed, checkpoints the iterate
        every ``checkpoint_interval`` V-cycle-equivalents with
        rollback on residual spikes/divergence, and runs a staleness
        watchdog that restarts (re-syncs) grids that stopped making
        progress.  ``None`` = no protection (the ablation).
    tracer:
        Optional :class:`~repro.observe.Tracer` (use ``clock="steps"``).
        Event times are scheduler micro-steps, so a traced run with a
        fixed seed produces a bit-identical algorithmic event stream on
        every repeat (the per-run ``kernel`` timing events carry
        measured wall seconds, which naturally vary).  Tracing records
        correction begin/end, read/write and
        staleness, and guard/fault events; residual snapshots are only
        emitted for norms the run computes anyway (``track_trace`` or
        guard checkpoints), so tracing itself adds no SpMV.  The digest
        lands on ``result.trace_summary``.
    live:
        Optional :class:`~repro.observe.live.LiveConfig`.  Starts the
        streaming snapshot collector (and optional scrape endpoint /
        JSONL stream / sampling profiler) alongside the run; implies
        tracing (a ``clock="steps"`` tracer is created when none was
        given) and ``track_trace`` (detectors need residual events).
        The live layer only *reads* — it never touches the RNG or the
        iterate — so a live run's algorithmic results are identical to
        the same run without it.  An ``alert_stop`` alert ends the run
        early at the next correction boundary (reported as
        ``stalled``).  The digest lands on ``result.live_summary``.
    """
    if checkpoints and criterion != "criterion2":
        raise ValueError("checkpoints require criterion2 semantics")
    if rescomp not in _RESCOMP:
        raise ValueError(f"rescomp must be one of {_RESCOMP}")
    if write not in _WRITE:
        raise ValueError(f"write must be one of {_WRITE}")
    if nchunks < 1:
        raise ValueError("nchunks must be >= 1")
    live_session = None
    if live is not None:
        from ..observe.live import start_live

        if tracer is None:
            from ..observe.tracer import Tracer as _Tracer

            tracer = _Tracer(clock="steps")
        track_trace = True  # detectors need residual events
        live_session = start_live(live, tracer, backend="engine")
    n = solver.n
    ngrids = solver.ngrids
    rng = np.random.default_rng(seed)
    speeds = rng.uniform(alpha, 1.0, size=ngrids)

    crit = (
        Criterion1(ngrids, tmax) if criterion == "criterion1" else Criterion2(ngrids, tmax)
    )

    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - solver.A @ x  # shared residual (global / rupdate modes)

    # Row ownership for the global-res no-wait parfor: contiguous row
    # blocks proportional to the grids' thread shares; we use the
    # work-proportional partition from Section IV.
    work = solver.work_per_grid()
    shares = np.maximum(work / work.sum(), 1e-6)
    cuts = np.concatenate([[0.0], np.cumsum(shares) / shares.sum()])
    row_bounds = np.round(cuts * n).astype(np.int64)
    rows = [(int(row_bounds[k]), int(row_bounds[k + 1])) for k in range(ngrids)]

    eff_chunks = 1 if write == "lock" else nchunks
    nb = two_norm(b) or 1.0

    telemetry = FaultTelemetry()
    injector = (
        FaultInjector(faults, ngrids)
        if faults is not None and faults.active
        else None
    )
    grd = Guard(guard, nb, telemetry) if guard is not None else None

    corr_fn: Optional[Callable[[int, np.ndarray], np.ndarray]] = None
    if injector is not None or grd is not None:

        def corr_fn(kk: int, r_in: np.ndarray) -> np.ndarray:
            e = solver.correction(kk, r_in)
            if injector is not None:
                e = injector.corrupt(e, telemetry)
            if grd is not None:
                screened = grd.screen(e)
                # A rejected correction is simply skipped: the grid
                # recomputes next round (Coleman-style extra work, not
                # divergence).
                e = np.zeros(n) if screened is None else screened
            return e

    def spawn(k: int, r0: Optional[np.ndarray] = None) -> Generator:
        return _grid_coroutine(
            solver,
            k,
            b,
            rescomp,
            eff_chunks,
            n,
            rows[k],
            correction_fn=corr_fn,
            r0=r0,
        )

    gens = [spawn(k) for k in range(ngrids)]
    running = [True] * ngrids
    crashed = [False] * ngrids  # fail-stop injected, awaiting watchdog
    stall_until = [0] * ngrids  # micro-step when a stalled grid resumes
    # Prime each coroutine to its first yield; `requests[k]` always
    # holds grid k's currently pending micro-op.
    requests: List[Optional[tuple]] = [g.send(None) for g in gens]

    # Per-kernel attribution: a traced run times every kernel call so
    # the trace can say where the micro-steps' wall time went.
    stats_were_on = False
    kstats0: dict = {}
    if tracer is not None:
        stats_were_on = kernels.enable_stats(True)
        kstats0 = kernels.stats()

    trace: List[float] = []
    cps = sorted(checkpoints) if checkpoints else []
    cp_idx = 0
    cp_results: List[Tuple[int, float, float]] = []
    activity: List[Tuple[int, int, int]] = []
    last_done = [0] * ngrids
    # Tracing state: commit epochs count completed corrections (the
    # dynamic analogue of the models' time instant t); a grid's read
    # staleness is the epochs other grids committed between its input
    # read and its own commit.
    commit_epoch = 0
    last_read_epoch = [-1] * ngrids
    micro = 0
    ops_per_corr = eff_chunks * 3 + 4
    max_micro = 50 * tmax * ngrids * ops_per_corr
    # Watchdog horizon: a healthy grid completes a correction roughly
    # every (ngrids / alpha) * ops_per_corr micro-steps; 50x that in
    # V-cycle units is far beyond any fair scheduler gap.
    wd_micro: Optional[int] = None
    if grd is not None and guard.watchdog:
        wd_micro = (
            guard.watchdog_microsteps
            if guard.watchdog_microsteps is not None
            else 50 * ngrids * ops_per_corr
        )
    ckpt_every = guard.checkpoint_interval * ngrids if grd is not None else 0
    diverged = False
    stalled = False
    while not diverged:
        if live_session is not None and live_session.stop_requested:
            stalled = True
            break
        alive = [k for k in range(ngrids) if running[k] and not crashed[k]]
        if not alive:
            break
        ready = [k for k in alive if stall_until[k] <= micro]
        if not ready:
            # Everyone left is mid-stall: jump the logical clock to the
            # earliest resume point (no grid waits on another — the
            # scheduler just has nothing to run).
            micro = min(stall_until[k] for k in alive)
            continue
        w = speeds[ready]
        k = int(rng.choice(ready, p=w / w.sum()))
        op = requests[k]
        g = gens[k]
        send_val = None
        kind = op[0]
        # The scheduler below is the engine's WritePolicy: exactly one
        # micro-op executes at a time, so these direct commits are the
        # single serialization point (one noqa per commit site).
        if kind == "add_x":
            _, lo, hi, vals = op
            x[lo:hi] += vals  # repro: noqa[RPR001] single-threaded scheduler commit
            if tracer is not None and lo == 0:
                tracer.record("write", k, float(micro), 0.0, -1.0, "x")
        elif kind == "add_r":
            _, lo, hi, vals = op
            r[lo:hi] += vals  # repro: noqa[RPR001] single-threaded scheduler commit
            if tracer is not None and lo == 0:
                tracer.record("write", k, float(micro), 0.0, -1.0, "r")
        elif kind == "read_x":
            _, lo, hi = op
            # The coroutine copies the sent slice into its own buffer
            # before it can observe further commits, so a view is safe
            # here and skips a per-read allocation.
            send_val = x[lo:hi]
            if lo == 0:
                last_read_epoch[k] = commit_epoch
                if tracer is not None:
                    tracer.record("read", k, float(micro), float(commit_epoch), 0.0, "x")
        elif kind == "read_r":
            _, lo, hi = op
            send_val = r[lo:hi]
            if lo == 0:
                last_read_epoch[k] = commit_epoch
                if tracer is not None:
                    tracer.record("read", k, float(micro), float(commit_epoch), 0.0, "r")
        elif kind == "refresh_r":
            _, lo, hi, vals = op
            r[lo:hi] = vals  # repro: noqa[RPR001] single-threaded scheduler commit
            if tracer is not None:
                tracer.record("write", k, float(micro), 0.0, -1.0, "r:assign")
        elif kind == "done_correction":
            crit.record(k)
            start_micro = last_done[k]
            activity.append((k, start_micro, micro))
            last_done[k] = micro
            commit_epoch += 1
            rel_now: Optional[float] = None
            if track_trace:
                rel_now = float(kernels.residual_norm(solver.A, x, b) / nb)
                trace.append(rel_now)
            if tracer is not None:
                cnt = float(crit.counts[k])
                stal = (
                    float(commit_epoch - 1 - last_read_epoch[k])
                    if last_read_epoch[k] >= 0
                    else -1.0
                )
                tracer.record("correct_begin", k, float(start_micro), cnt)
                tracer.record("correct_end", k, float(micro), cnt, stal)
                # Residual snapshots piggyback on norms that are being
                # computed anyway (track_trace / checkpoints) so that
                # tracing alone never adds an SpMV to the hot loop.
                if rel_now is not None:
                    tracer.record("residual", k, float(micro), rel_now, 0.0, "global")
            while cp_idx < len(cps) and int(crit.counts.min()) >= cps[cp_idx]:
                cp_results.append(
                    (
                        cps[cp_idx],
                        float(kernels.residual_norm(solver.A, x, b) / nb),
                        float(crit.counts.mean()),
                    )
                )
                cp_idx += 1
            if crit.grid_done(k):
                running[k] = False
                g.close()
            # --- fault injection at the correction boundary ---------
            if injector is not None and running[k]:
                completed = int(crit.counts[k])
                if injector.crash_due(k, completed):
                    crashed[k] = True
                    telemetry.bump("injected_crashes")
                    if tracer is not None:
                        tracer.record("fault", k, float(micro), tag="crash")
                else:
                    dur = injector.stall_due(k, completed)
                    if dur is not None:
                        stall_until[k] = micro + int(dur)
                        telemetry.bump("injected_stalls")
                        if tracer is not None:
                            tracer.record("fault", k, float(micro), float(dur), tag="stall")
            # --- guard: periodic checkpoint / spike rollback --------
            if ckpt_every and int(crit.counts.sum()) % ckpt_every == 0:
                if rel_now is None:
                    rel_now = float(kernels.residual_norm(solver.A, x, b) / nb)
                    if tracer is not None:
                        tracer.record("residual", k, float(micro), rel_now, 0.0, "global")
                action, x_restore = grd.checkpoint_or_rollback(x, rel_now)
                if tracer is not None and action != "none":
                    tracer.record("guard", k, float(micro), tag=action)
                if action == "rollback":
                    x[:] = x_restore  # repro: noqa[RPR001] rollback at the scheduler barrier
                    kernels.range_residual(solver.A, x, b, 0, n, out=r)
            # --- guard: staleness watchdog + restart ----------------
            if wd_micro is not None:
                for j in range(ngrids):
                    if j == k or not running[j] or stall_until[j] > micro:
                        continue
                    if micro - last_done[j] <= wd_micro:
                        continue
                    telemetry.bump("watchdog_detections")
                    if tracer is not None:
                        tracer.record("guard", j, float(micro), tag="watchdog")
                    if grd.try_restart():
                        if tracer is not None:
                            tracer.record("guard", j, float(micro), tag="restart")
                        # Replica re-sync: the restarted grid starts
                        # from the residual of the current iterate.
                        gens[j] = spawn(j, r0=b - solver.A @ x)
                        requests[j] = gens[j].send(None)
                        crashed[j] = False
                        last_done[j] = micro
                        if guard.restart_delay:
                            stall_until[j] = micro + int(guard.restart_delay)
                    else:
                        running[j] = False  # dead for good
            # Divergence guard: corrections exploding means the run is
            # lost; a guarded run first spends its rollback budget.
            xmax = float(np.abs(x).max()) if n else 0.0
            if not np.isfinite(xmax) or xmax > divergence_threshold * max(nb, 1.0):
                recovered = False
                if grd is not None:
                    action, x_restore = grd.checkpoint_or_rollback(x, np.inf)
                    if action == "rollback":
                        if tracer is not None:
                            tracer.record("guard", k, float(micro), tag="rollback")
                        x[:] = x_restore  # repro: noqa[RPR001] rollback at the scheduler barrier
                        kernels.range_residual(solver.A, x, b, 0, n, out=r)
                        recovered = True
                if not recovered:
                    diverged = True
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown micro-op {kind!r}")
        if running[k] and not crashed[k]:
            requests[k] = g.send(send_val)
        micro += 1
        if micro > max_micro:
            if injector is not None:
                stalled = True
                break
            raise RuntimeError("engine exceeded micro-step budget")

    rel = kernels.residual_norm(solver.A, x, b) / nb
    final_diverged = diverged or not np.isfinite(rel) or rel > divergence_threshold
    if injector is not None and not final_diverged and not crit.all_done():
        stalled = True
    stalled = stalled and not final_diverged
    if tracer is not None:
        for kname, (calls, secs) in sorted(kernels.stats_delta(kstats0).items()):
            tracer.record("kernel", -1, float(micro), float(secs), float(calls), kname)
        kernels.enable_stats(stats_were_on)
    # Final collection + teardown before the summary so alert events
    # recorded by the collector are part of the merged trace.
    live_summary = live_session.finish() if live_session is not None else None
    return AsyncEngineResult(
        x=x,
        rel_residual=rel,
        counts=crit.counts.copy(),
        micro_steps=micro,
        speeds=speeds,
        diverged=final_diverged,
        residual_trace=trace,
        activity_trace=activity,
        checkpoint_results=cp_results,
        stalled=stalled,
        telemetry=telemetry,
        trace_summary=tracer.summary() if tracer is not None else None,
        kernel_backend=kernels.current_backend(),
        live_summary=live_summary,
    )
