"""True-parallel shared-memory executor (``--backend procs``).

One worker **process** per thread-group runs the Algorithm-5 loop
against vectors living in a single
:class:`multiprocessing.shared_memory.SharedMemory` block, np-viewed
zero-copy in every worker — the GIL-free counterpart of
:mod:`repro.core.threaded`.  Where the threaded executor delivers
genuine interleaving but no speedup, this executor delivers real
parallel wall-clock behaviour: the measured Fig.-6 curves come from
here.

Design notes
------------

**Memory layout.**  Everything shared lives in one segment, laid out by
:class:`_Layout` (all slots are 8-byte aligned float64/int64): the
iterate ``x``, residual ``r`` and RHS ``b`` (each ``n x k``), seqlock
words for both guarded vectors, per-grid correction counts, control
flags (stop / criterion-2 done / deterministic done), per-worker
heartbeats, exit status, telemetry shards and trace rings.  NumPy views
into the segment are constructed **only** inside
:class:`SharedVectors` (linter rule RPR012 enforces this), so every
view's lifetime is tied to the object that owns the mapping.

**Write policies on real shared memory.**  ``lock`` is a single
``multiprocessing`` mutex per vector (:class:`ProcLockWrite`);
``atomic`` emulates element-granular atomics with striped mp locks for
writer-writer exclusion plus a per-stripe *seqlock* word for lock-free
readers (:class:`ProcAtomicWrite`): the writer bumps the word to odd,
mutates the stripe, bumps it back to even; a reader retries while the
word is odd or changed across its copy.  This preserves the Section-III
read model — readers may observe a partially committed update at stripe
granularity, never a torn element.  The seqlock argument relies on
store ordering (x86-TSO; on weaker architectures the bounded retry
falls back to the stripe lock, which is a full barrier).  ``unsafe``
is the lost-update ablation, as in the threaded executor.

**Worker bootstrap.**  Workers are spawned (never forked — the parent
holds live locks, scipy state and possibly threads) and receive a
pickled :class:`SetupBundle`: the AMG hierarchy (with any memoized
smoothed interpolants riding along) plus the solver's constructor
recipe.  The bundle is adopted into the worker's AMG setup cache under
the problem's content hash, so anything else in the worker that asks
for the same ``(matrix, options)`` setup gets the shipped hierarchy
for free.  The :mod:`repro.kernels` dispatch runs unchanged in every
worker — plan caches and scratch pools are process-local by design.

**Faults and recovery.**  A crash fault is a *real* process death
(``os._exit``), detected by the supervisor through heartbeats/exit
codes and restarted through the existing :class:`~repro.resilience.Guard`
budget with replica re-sync from the shared iterate.  Telemetry uses
the single-writer-shard idiom: each worker bumps only its own int64
row, merged into the run's :class:`FaultTelemetry` at join.  Trace
events flow through single-writer rings (cursor published after the
record — same TSO argument), drained by the parent into the run's
:class:`~repro.observe.Tracer` under worker keys ``"p<wid>"``.

**Clock.**  Everything here uses ``time.monotonic`` — on Linux it is
system-wide, so heartbeat timestamps written by workers are directly
comparable in the parent.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time as _time
import traceback
from dataclasses import dataclass, field, replace
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from .. import kernels
from ..linalg import two_norm
from ..resilience import FaultInjector, FaultPlan, FaultTelemetry, Guard, GuardPolicy
from .engine import run_async_engine
from .threaded import _WORKER_ERRORS
from .writes import UnsafeWrite, WritePolicy

if TYPE_CHECKING:  # runtime import would cycle through repro.observe
    from ..observe.live import LiveConfig, LiveSummary
    from ..observe.tracer import Tracer, TraceSummary

__all__ = [
    "ProcsResult",
    "SetupBundle",
    "SharedVectors",
    "ProcLockWrite",
    "ProcAtomicWrite",
    "make_proc_write_policy",
    "run_procs",
]

_RESCOMP = ("local", "global", "rupdate")
_CRITERIA = ("criterion1", "criterion2")
_WRITES = ("lock", "atomic", "unsafe")

#: Worker exit code for an injected fail-stop (distinct from 0/clean
#: and from Python's 1/traceback so the supervisor can tell them apart
#: in logs; detection itself only needs "died without finishing").
_CRASH_EXIT = 17

#: Flag slots in the shared control region.
_FLAG_STOP = 0
_FLAG_DONE = 1  # criterion-2 master flag
_FLAG_DET_DONE = 2
_NFLAGS = 4

#: Worker status codes (``SharedVectors.status``).
_STATUS_RUNNING = 0
_STATUS_OK = 1
_STATUS_ERROR = 2

#: Telemetry counters a worker may bump, in shared-row slot order.
_TEL_COUNTERS = (
    "injected_crashes",
    "injected_stalls",
    "injected_corruptions",
    "corrections_rejected",
    "corrections_clamped",
)

#: Ring-record vocabularies: events cross the process boundary as six
#: float64 slots, so kinds and tags are encoded as indices into these
#: tuples (index 0 = the empty tag).
_TRACE_KINDS = ("correct_begin", "correct_end", "residual", "fault")
_TRACE_TAGS = ("", "crash", "stall", "local")

_RING_CAPACITY = 4096
_RING_WIDTH = 6


# ----------------------------------------------------------------------
# Shared segment layout + views
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Layout:
    """Geometry of the shared segment (picklable, shipped to workers)."""

    n: int
    k: int
    ngrids: int
    nworkers: int
    nstripes: int
    ring_capacity: int = _RING_CAPACITY

    def slots(self) -> Tuple[Tuple[str, int, str, Tuple[int, ...]], ...]:
        """``(name, count, dtype, shape)`` for every region, in order."""
        m = self.n * self.k
        w = self.nworkers
        return (
            ("x", m, "f8", (self.n, self.k)),
            ("r", m, "f8", (self.n, self.k)),
            ("b", m, "f8", (self.n, self.k)),
            ("seq_x", self.nstripes, "i8", (self.nstripes,)),
            ("seq_r", self.nstripes, "i8", (self.nstripes,)),
            ("counts", self.ngrids, "i8", (self.ngrids,)),
            ("flags", _NFLAGS, "i8", (_NFLAGS,)),
            ("heartbeats", w, "f8", (w,)),
            ("status", w, "i8", (w,)),
            ("telemetry", w * len(_TEL_COUNTERS), "i8", (w, len(_TEL_COUNTERS))),
            ("ring_cursors", w, "i8", (w,)),
            (
                "rings",
                w * self.ring_capacity * _RING_WIDTH,
                "f8",
                (w, self.ring_capacity, _RING_WIDTH),
            ),
        )

    @property
    def nbytes(self) -> int:
        return 8 * sum(count for _, count, _, _ in self.slots())


class SharedVectors:
    """Sole owner of the run's shared segment and of every view into it.

    All ``np.frombuffer`` views are constructed here and nowhere else
    (RPR012): workers and the parent both talk to the segment through a
    ``SharedVectors`` instance, so teardown can drop the views before
    closing the mapping and the unlink happens exactly once, in the
    parent, no matter how workers died.
    """

    _VIEWS = (
        "x",
        "r",
        "b",
        "seq_x",
        "seq_r",
        "counts",
        "flags",
        "heartbeats",
        "status",
        "telemetry",
        "ring_cursors",
        "rings",
    )

    def __init__(
        self, shm: shared_memory.SharedMemory, layout: _Layout, owner: bool
    ) -> None:
        self._shm = shm
        self.layout = layout
        self.name = shm.name
        self._owner = owner
        self._unlinked = False
        self._closed = False
        offset = 0
        for vname, count, dtype, shape in layout.slots():
            view = np.frombuffer(shm.buf, dtype=dtype, count=count, offset=offset)
            setattr(self, vname, view.reshape(shape))
            offset += 8 * count
        if offset > shm.size:  # pragma: no cover - layout arithmetic guard
            raise ValueError(f"layout needs {offset} bytes, segment has {shm.size}")

    # -- construction ---------------------------------------------------
    @classmethod
    def create(cls, layout: _Layout) -> "SharedVectors":
        """Allocate a fresh segment in the parent (auto-named)."""
        shm = shared_memory.SharedMemory(create=True, size=layout.nbytes)
        sv = cls(shm, layout, owner=True)
        for vname in cls._VIEWS:  # POSIX zero-fills, but be explicit
            getattr(sv, vname)[...] = 0
        return sv

    @classmethod
    def attach(cls, name: str, layout: _Layout) -> "SharedVectors":
        """Map an existing segment in a worker.

        Python 3.11's ``SharedMemory`` registers *every* attach with the
        resource tracker (no ``track=`` parameter yet).  Spawned workers
        share the parent's tracker process, so that re-registration is
        an idempotent set-add — harmless — while an *unregister* here
        would strip the parent's own registration and turn the parent's
        final unlink into tracker noise.  Lifetime management therefore
        stays entirely with the parent: workers only ever ``close()``.
        """
        return cls(shared_memory.SharedMemory(name=name), layout, owner=False)

    # -- flat views -----------------------------------------------------
    @property
    def x_flat(self) -> np.ndarray:
        return self.x.reshape(-1)

    @property
    def r_flat(self) -> np.ndarray:
        return self.r.reshape(-1)

    # -- teardown -------------------------------------------------------
    def close(self) -> None:
        """Drop the views and unmap.  Safe to call twice; tolerates a
        stray external reference still pinning the buffer (the mapping
        then frees at garbage collection instead)."""
        if self._closed:
            return
        self._closed = True
        for vname in self._VIEWS:
            setattr(self, vname, None)
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - external view still alive
            pass

    def unlink(self) -> None:
        """Remove the segment name — parent only, exactly once."""
        if self._owner and not self._unlinked:
            self._unlinked = True
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


# ----------------------------------------------------------------------
# Write policies over real shared memory
# ----------------------------------------------------------------------


class ProcLockWrite(WritePolicy):
    """One ``multiprocessing`` mutex: whole-vector commits and reads."""

    name = "proc-lock"

    def __init__(self, n: int, lock: Any) -> None:
        super().__init__(n)
        self._lock = lock

    def add(self, target: np.ndarray, update: np.ndarray) -> None:
        with self._lock:
            target += update

    def assign_slice(
        self, target: np.ndarray, lo: int, hi: int, values: np.ndarray
    ) -> None:
        with self._lock:
            target[lo:hi] = values

    def read(self, source: np.ndarray) -> np.ndarray:
        with self._lock:
            return source.copy()


class ProcAtomicWrite(WritePolicy):
    """Striped mp locks + per-stripe seqlock words.

    Writers hold the stripe lock (writer-writer exclusion) and bracket
    the mutation with two increments of the stripe's shared int64 —
    odd means "publication in progress".  Readers copy a stripe without
    any lock, retrying while the word is odd or changed across the
    copy; after ``max_retries`` failed attempts the reader falls back
    to the stripe lock (bounded progress under pathological write
    pressure).  ``read_retries`` / ``lock_fallbacks`` are per-process
    diagnostic counters (the torn-write property test asserts the retry
    path actually fires).
    """

    name = "proc-atomic"

    def __init__(
        self,
        n: int,
        stripe: int,
        locks: List[Any],
        seq: np.ndarray,
        max_retries: int = 64,
    ) -> None:
        super().__init__(n)
        if stripe < 1:
            raise ValueError("stripe must be >= 1")
        self.stripe = int(stripe)
        self.nstripes = max(1, -(-self.n // self.stripe))
        if len(locks) != self.nstripes or seq.shape[0] != self.nstripes:
            raise ValueError(
                f"need {self.nstripes} locks/seq words, "
                f"got {len(locks)}/{seq.shape[0]}"
            )
        self._locks = list(locks)
        self._seq = seq
        self.max_retries = int(max_retries)
        self.read_retries = 0
        self.lock_fallbacks = 0

    def _ranges(
        self, lo: int = 0, hi: Optional[int] = None
    ) -> Iterator[Tuple[int, int, int]]:
        hi = self.n if hi is None else hi
        first = lo // self.stripe
        last = (hi - 1) // self.stripe if hi > lo else first - 1
        for s in range(first, last + 1):
            a = max(lo, s * self.stripe)
            b = min(hi, (s + 1) * self.stripe)
            yield s, a, b

    def add(self, target: np.ndarray, update: np.ndarray) -> None:
        seq = self._seq
        for s, a, b in self._ranges():
            with self._locks[s]:
                seq[s] += 1  # odd: stripe unstable
                target[a:b] += update[a:b]
                seq[s] += 1  # even: stripe stable again

    def assign_slice(
        self, target: np.ndarray, lo: int, hi: int, values: np.ndarray
    ) -> None:
        seq = self._seq
        for s, a, b in self._ranges(lo, hi):
            with self._locks[s]:
                seq[s] += 1
                target[a:b] = values[a - lo : b - lo]
                seq[s] += 1

    def read(self, source: np.ndarray) -> np.ndarray:
        out = np.empty(self.n)
        for s, a, b in self._ranges():
            self._read_stripe(source, out, s, a, b)
        return out

    def _read_stripe(
        self, source: np.ndarray, out: np.ndarray, s: int, a: int, b: int
    ) -> None:
        seq = self._seq
        for _ in range(self.max_retries):
            s1 = int(seq[s])
            if s1 & 1:  # writer mid-publication
                self.read_retries += 1
                continue
            out[a:b] = source[a:b]
            if int(seq[s]) == s1:  # unchanged across the copy: clean
                return
            self.read_retries += 1
        self.lock_fallbacks += 1
        with self._locks[s]:
            out[a:b] = source[a:b]


def make_proc_write_policy(
    name: str, n: int, stripe: int, locks: List[Any], seq: np.ndarray
) -> WritePolicy:
    """Build a cross-process write policy over pre-created mp locks."""
    if name == "lock":
        return ProcLockWrite(n, locks[0])
    if name == "atomic":
        return ProcAtomicWrite(n, stripe, locks, seq)
    if name == "unsafe":
        return UnsafeWrite(n)
    raise KeyError(f"unknown write policy {name!r}; known: {sorted(_WRITES)}")


def _make_locks(write: str, nstripes: int, ctx: Any) -> List[Any]:
    """Locks for one shared vector, created in the parent (mp locks are
    only shippable through ``Process`` args, not via late pickling)."""
    if write == "lock":
        return [ctx.Lock()]
    if write == "atomic":
        return [ctx.Lock() for _ in range(nstripes)]
    return []


# ----------------------------------------------------------------------
# Solver transport
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SetupBundle:
    """Everything a worker needs to rebuild its solver, shipped once.

    The hierarchy (a plain dataclass of CSR levels — cheap to pickle,
    and any memoized smoothed interpolants in its ``__dict__`` ride
    along) plus the constructor recipe.  The coarse LU factorisation is
    *not* shipped (SuperLU objects don't pickle); each worker refactors
    deterministically from the same coarse operator, so a rebuilt
    solver is numerically identical to the parent's.
    """

    hierarchy: Any
    method: str
    smoother: str
    smoother_kwargs: Dict[str, Any]
    extra: Dict[str, Any]
    fingerprint: str

    @classmethod
    def from_solver(cls, solver: Any) -> "SetupBundle":
        from ..kernels.setupcache import problem_fingerprint
        from ..solvers import AFACx, BPX, Multadd

        if isinstance(solver, Multadd):
            method = "multadd"
            extra: Dict[str, Any] = {
                "lambda_mode": solver.lambda_mode,
                "interp_smoother_kind": solver.interp_smoother_kind,
                "interp_weight": solver.interp_weight,
            }
        elif isinstance(solver, AFACx):
            method = "afacx"
            extra = {
                "s1": solver.s1,
                "s2": solver.s2,
                "coarse_sweeps": solver.coarse_sweeps,
                "exact_coarse": solver.exact_coarse,
            }
        elif isinstance(solver, BPX):
            method = "bpx"
            extra = {"scale": solver.scale}
        else:
            raise TypeError(
                f"cannot ship a {type(solver).__name__} to worker processes; "
                "the procs backend knows multadd/afacx/bpx"
            )
        return cls(
            hierarchy=solver.hierarchy,
            method=method,
            smoother=solver.smoother_name,
            smoother_kwargs=dict(solver.smoother_kwargs),
            extra=extra,
            fingerprint=problem_fingerprint(solver.A),
        )

    def build_solver(self) -> Any:
        """Rebuild the solver in a worker, seeding its setup cache."""
        from ..kernels.setupcache import adopt_hierarchy
        from ..solvers import AFACx, BPX, Multadd

        adopt_hierarchy(self.hierarchy, self.fingerprint)
        ctor = {"multadd": Multadd, "afacx": AFACx, "bpx": BPX}[self.method]
        return ctor(
            self.hierarchy, self.smoother, **self.extra, **self.smoother_kwargs
        )


# ----------------------------------------------------------------------
# Worker-side helpers
# ----------------------------------------------------------------------


class _ShardTelemetry:
    """``FaultTelemetry``-compatible ``bump`` over one shared int64 row."""

    def __init__(self, row: np.ndarray) -> None:
        self._row = row

    def bump(self, counter: str, by: int = 1) -> None:
        self._row[_TEL_COUNTERS.index(counter)] += by


class _SharedCriterion:
    """Criterion 1/2 over the shared counts/flags regions.

    Counts are single-writer (only a grid's owner increments its slot),
    so no cross-process lock is needed.  The criterion-2 completeness
    check reads other workers' counters racily — counters only grow, so
    the worst case is the flag raising one correction late, which is
    exactly the paper's master-thread semantics.
    """

    def __init__(
        self, counts: np.ndarray, flags: np.ndarray, kind: str, tmax: int
    ) -> None:
        if tmax < 1:
            raise ValueError("tmax must be >= 1")
        self.counts = counts
        self.flags = flags
        self.kind = kind
        self.tmax = int(tmax)

    def record(self, k: int) -> None:
        self.counts[k] += 1
        if (
            self.kind == "criterion2"
            and not self.flags[_FLAG_DONE]
            and bool(np.all(self.counts >= self.tmax))
        ):
            self.flags[_FLAG_DONE] = 1

    def grid_done(self, k: int) -> bool:
        if self.kind == "criterion2":
            return bool(self.flags[_FLAG_DONE])
        return bool(self.counts[k] >= self.tmax)

    def all_done(self) -> bool:
        if self.kind == "criterion2":
            return bool(self.flags[_FLAG_DONE])
        return bool(np.all(self.counts >= self.tmax))


@dataclass(frozen=True)
class _WorkerConfig:
    """Per-run constants shipped to every worker (picklable)."""

    tmax: int
    rescomp: str
    write: str
    criterion: str
    stripe: int
    alpha: float
    seed: int
    deterministic: bool
    trace: bool
    nb: float
    t0: float
    deadline: float
    divergence_threshold: float
    kernel_backend: str
    guard: Optional[GuardPolicy]
    faults: Optional[FaultPlan]


def _ring_record(
    sv: SharedVectors,
    wid: int,
    t: float,
    kind: str,
    grid: int,
    a: float = 0.0,
    b: float = 0.0,
    tag: str = "",
) -> None:
    """Append one event to this worker's ring (single writer).

    The record is fully written before the cursor store publishes it —
    the same store-ordering argument as the seqlock writer.
    """
    cap = sv.layout.ring_capacity
    cur = int(sv.ring_cursors[wid])
    rec = sv.rings[wid, cur % cap]
    rec[0] = t
    rec[1] = float(_TRACE_KINDS.index(kind))
    rec[2] = float(grid)
    rec[3] = a
    rec[4] = b
    rec[5] = float(_TRACE_TAGS.index(tag))
    sv.ring_cursors[wid] = cur + 1


def _worker_main(
    wid: int,
    shm_name: str,
    layout: _Layout,
    bundle: SetupBundle,
    grids: Tuple[int, ...],
    rows: Tuple[Tuple[int, int], ...],
    cfg: _WorkerConfig,
    locks_x: List[Any],
    locks_r: List[Any],
    errq: Any,
    resync: bool,
) -> None:
    """Worker process entry point (module-level: spawn-picklable)."""
    sv = SharedVectors.attach(shm_name, layout)
    try:
        try:
            kernels.use(cfg.kernel_backend)
            solver = bundle.build_solver()
            if cfg.deterministic:
                _run_deterministic(sv, solver, cfg)
            else:
                _worker_loop(
                    sv, wid, solver, grids, rows, cfg, locks_x, locks_r, resync
                )
            sv.status[wid] = _STATUS_OK
        except _WORKER_ERRORS:
            errq.put((wid, traceback.format_exc()))
            sv.status[wid] = _STATUS_ERROR
            sv.flags[_FLAG_STOP] = 1
    finally:
        sv.close()


def _run_deterministic(sv: SharedVectors, solver: Any, cfg: _WorkerConfig) -> None:
    """Single-worker transport-validation mode: run the sequential
    engine *inside* the worker over the shipped operands and write the
    result back through shared memory.  Bit-identical to a direct
    ``run_async_engine`` call by construction, while still exercising
    the pickle + SharedMemory round trip end to end."""
    b = np.array(sv.b, copy=True).reshape(-1)
    res = run_async_engine(
        solver,
        b,
        tmax=cfg.tmax,
        rescomp=cfg.rescomp,
        write=cfg.write,
        criterion=cfg.criterion,
        alpha=cfg.alpha,
        seed=cfg.seed,
        divergence_threshold=cfg.divergence_threshold,
    )
    sv.x_flat[:] = res.x
    sv.counts[:] = res.counts
    sv.flags[_FLAG_DET_DONE] = 1


def _worker_loop(
    sv: SharedVectors,
    wid: int,
    solver: Any,
    grids: Tuple[int, ...],
    rows: Tuple[Tuple[int, int], ...],
    cfg: _WorkerConfig,
    locks_x: List[Any],
    locks_r: List[Any],
    resync: bool,
) -> None:
    lay = sv.layout
    n, k = lay.n, lay.k
    m = n * k
    A = solver.A
    x_flat, r_flat = sv.x_flat, sv.r_flat
    flags, counts = sv.flags, sv.counts
    B = np.array(sv.b, copy=True)  # private RHS replica (n, k)
    b1 = np.ascontiguousarray(B.reshape(-1)) if k == 1 else None

    xpol = make_proc_write_policy(cfg.write, m, cfg.stripe, locks_x, sv.seq_x)
    rpol = make_proc_write_policy(cfg.write, m, cfg.stripe, locks_r, sv.seq_r)
    crit = _SharedCriterion(counts, flags, cfg.criterion, cfg.tmax)
    shard = _ShardTelemetry(sv.telemetry[wid])

    injector = None
    if cfg.faults is not None and cfg.faults.active:
        # Offset the stochastic streams per worker so concurrent workers
        # don't draw identical corruption patterns; deterministic
        # schedules (crash/stall) are grid-indexed and unaffected.
        injector = FaultInjector(
            replace(cfg.faults, seed=cfg.faults.seed + wid), lay.ngrids
        )
        if resync:
            # A restarted process must not re-serve crash sentences that
            # already executed (the one-shot state died with its
            # predecessor).
            injector.forgive_completed_crashes(counts)
    grd = Guard(cfg.guard, cfg.nb) if cfg.guard is not None else None

    # Replicas seeded from the *current* shared state — correct both at
    # cold start (x is x0) and after a watchdog restart.
    x0_loc = xpol.read(x_flat)
    if k == 1:
        assert b1 is not None
        r0 = kernels.range_residual(A, x0_loc, b1, 0, n)
    else:
        r0 = kernels.range_residual_block(A, x0_loc.reshape(n, k), B, 0, n)
    r_local: Dict[int, np.ndarray] = {g: r0.copy() for g in grids}

    # Steady-state buffers: one allocation per worker, zero per step.
    e_block = np.empty((n, k)) if k > 1 else None
    de_buf = np.empty(n) if cfg.rescomp == "rupdate" and k == 1 else None
    de_block = np.empty((n, k)) if cfg.rescomp == "rupdate" and k > 1 else None
    fresh: Dict[int, np.ndarray] = {}
    if cfg.rescomp == "global":
        for g in grids:
            lo, hi = rows[g]
            if hi > lo:
                fresh[g] = np.empty(hi - lo) if k == 1 else np.empty((hi - lo, k))
    zeros_e = np.zeros(m) if grd is not None else None

    pending = list(grids)
    while pending:
        if flags[_FLAG_STOP]:
            return
        for g in list(pending):
            if flags[_FLAG_STOP]:
                return
            if crit.grid_done(g):
                pending.remove(g)
                continue
            sv.heartbeats[wid] = _time.monotonic()
            completed = int(counts[g])
            if injector is not None:
                if injector.crash_due(g, completed):
                    shard.bump("injected_crashes")
                    if cfg.trace:
                        _ring_record(
                            sv, wid, _time.monotonic() - cfg.t0, "fault", g,
                            tag="crash",
                        )
                    os._exit(_CRASH_EXIT)  # a real fail-stop process death
                dur = injector.stall_due(g, completed)
                if dur is not None:
                    shard.bump("injected_stalls")
                    if cfg.trace:
                        _ring_record(
                            sv, wid, _time.monotonic() - cfg.t0, "fault", g,
                            a=float(dur), tag="stall",
                        )
                    _time.sleep(
                        min(float(dur), max(0.0, cfg.deadline - _time.monotonic()))
                    )
            if cfg.trace:
                _ring_record(
                    sv, wid, _time.monotonic() - cfg.t0, "correct_begin", g,
                    a=float(completed + 1),
                )
            rl = r_local[g]
            if k == 1:
                e = solver.correction(g, rl)
            else:
                assert e_block is not None
                for j in range(k):
                    e_block[:, j] = solver.correction(
                        g, np.ascontiguousarray(rl[:, j])
                    )
                e = e_block.reshape(-1)
            if injector is not None:
                e = injector.corrupt(e, shard)  # type: ignore[arg-type]
            if grd is not None:
                screened = grd.screen(e, telemetry=shard)  # type: ignore[arg-type]
                if screened is None:
                    assert zeros_e is not None
                    e = zeros_e
                else:
                    e = screened
            xpol.add(x_flat, e)
            if cfg.rescomp == "rupdate":
                if k == 1:
                    assert de_buf is not None
                    kernels.range_matvec(A, e, 0, n, out=de_buf)
                    np.negative(de_buf, out=de_buf)
                    rpol.add(r_flat, de_buf)
                else:
                    assert de_block is not None
                    kernels.range_matvec_block(A, e.reshape(n, k), 0, n, out=de_block)
                    de_flat = de_block.reshape(-1)
                    np.negative(de_flat, out=de_flat)
                    rpol.add(r_flat, de_flat)
                rr = rpol.read(r_flat)
                r_local[g] = rr if k == 1 else rr.reshape(n, k)
            elif cfg.rescomp == "local":
                x_loc = xpol.read(x_flat)
                if k == 1:
                    assert b1 is not None
                    kernels.range_residual(A, x_loc, b1, 0, n, out=r_local[g])
                else:
                    kernels.range_residual_block(
                        A, x_loc.reshape(n, k), B, 0, n, out=r_local[g]
                    )
            else:  # global
                x_loc = xpol.read(x_flat)
                lo, hi = rows[g]
                if hi > lo:
                    if k == 1:
                        assert b1 is not None
                        kernels.range_residual(A, x_loc, b1, lo, hi, out=fresh[g])
                        rpol.assign_slice(r_flat, lo, hi, fresh[g])
                    else:
                        kernels.range_residual_block(
                            A, x_loc.reshape(n, k), B, lo, hi, out=fresh[g]
                        )
                        rpol.assign_slice(
                            r_flat, lo * k, hi * k, fresh[g].reshape(-1)
                        )
                rr = rpol.read(r_flat)
                r_local[g] = rr if k == 1 else rr.reshape(n, k)
            crit.record(g)
            sv.heartbeats[wid] = _time.monotonic()
            mx = float(np.abs(r_local[g]).max()) if m else 0.0
            if cfg.trace:
                now = _time.monotonic() - cfg.t0
                _ring_record(sv, wid, now, "correct_end", g, a=float(counts[g]))
                _ring_record(
                    sv, wid, now, "residual", g,
                    a=float(two_norm(r_local[g].reshape(-1)) / cfg.nb),
                    tag="local",
                )
            if not np.isfinite(mx) or mx > cfg.divergence_threshold * max(
                cfg.nb, 1.0
            ):
                flags[_FLAG_STOP] = 1
                return

# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


@dataclass
class ProcsResult:
    """Outcome of a true-parallel (process-backed) asynchronous run.

    Field-compatible with :class:`~repro.core.threaded.ThreadedResult`
    so benchmark harnesses and the CLI treat the two interchangeably;
    ``workers`` records the process count (thread-groups) and
    ``deterministic`` whether the run used the single-worker
    transport-validation mode.
    """

    x: np.ndarray
    rel_residual: float
    counts: np.ndarray
    wall_time: float
    diverged: bool = False
    errors: List[str] = field(default_factory=list)
    residual_samples: List[tuple] = field(default_factory=list)
    stalled: bool = False
    telemetry: FaultTelemetry = field(default_factory=FaultTelemetry)
    trace_summary: Optional["TraceSummary"] = None
    kernel_backend: str = "numpy"
    live_summary: Optional["LiveSummary"] = None
    workers: int = 1
    deterministic: bool = False

    @property
    def corrects(self) -> float:
        return float(self.counts.mean())


def _assign_grids(work: np.ndarray, nworkers: int) -> List[List[int]]:
    """Deterministic LPT partition of grids onto worker processes.

    Heaviest grid first onto the least-loaded worker (ties broken by
    index) — the paper's thread-group work split, at process
    granularity.
    """
    order = sorted(range(len(work)), key=lambda g: (-float(work[g]), g))
    loads = [0.0] * nworkers
    owned: List[List[int]] = [[] for _ in range(nworkers)]
    for g in order:
        w = min(range(nworkers), key=lambda i: (loads[i], i))
        owned[w].append(g)
        loads[w] += float(work[g])
    for lst in owned:
        lst.sort()
    return owned


def _drain_rings(sv: SharedVectors, tracer: "Tracer", cursors: List[int]) -> None:
    """Feed new ring records into the parent's tracer buffers.

    Safe to run while workers append: the published cursor is read
    first, so only fully-written records are consumed; anything
    overwritten between drains is tallied as dropped.
    """
    cap = sv.layout.ring_capacity
    for wid in range(sv.layout.nworkers):
        pos = int(sv.ring_cursors[wid])
        have = pos - cursors[wid]
        if have <= 0:
            continue
        take = min(have, cap)
        key = f"p{wid}"
        tracer.buffer(key).dropped += have - take
        for idx in range(pos - take, pos):
            rec = sv.rings[wid, idx % cap]
            tracer.record(
                _TRACE_KINDS[int(rec[1])],
                int(rec[2]),
                float(rec[0]),
                float(rec[3]),
                float(rec[4]),
                _TRACE_TAGS[int(rec[5])],
                worker=key,
            )
        cursors[wid] = pos


def run_procs(
    solver: Any,
    b: np.ndarray,
    tmax: int = 20,
    rescomp: str = "local",
    write: str = "lock",
    criterion: str = "criterion1",
    stripe: int = 1024,
    x0: Optional[np.ndarray] = None,
    divergence_threshold: float = 1e6,
    timeout: float = 600.0,
    workers: Optional[int] = None,
    deterministic: bool = False,
    alpha: float = 0.1,
    seed: int = 0,
    monitor_interval: Optional[float] = None,
    faults: Optional[FaultPlan] = None,
    guard: Optional[GuardPolicy] = None,
    tracer: Optional["Tracer"] = None,
    live: Optional["LiveConfig"] = None,
) -> ProcsResult:
    """Run asynchronous additive multigrid with worker *processes*.

    Parameters mirror :func:`repro.core.threaded.run_threaded`, plus:

    ``workers``
        Number of worker processes (thread-groups).  Default:
        ``min(ngrids, cpu_count)``.  Grids are LPT-partitioned onto
        workers by :meth:`work_per_grid`; each worker round-robins its
        owned grids, so any worker count from 1 to ``ngrids`` is valid.
    ``deterministic``
        Single-worker transport-validation mode: the worker runs the
        sequential engine (same ``alpha``/``seed`` semantics as
        ``run_async_engine``) over the shipped operands and writes the
        result back through shared memory — bit-identical to the engine
        backend by construction.  Requires ``workers=1``, a single RHS,
        and no faults/guard.
    ``b``
        Accepts a single RHS ``(n,)`` or a multi-RHS block ``(n, k)``;
        workers then use the blocked kernels and the write policies run
        over the flattened ``n*k`` vector (stripes span columns).

    Crash faults are *real* process deaths (``os._exit``), detected by
    the supervisor via exit codes and restarted — whole process, all
    its grids re-synced from the shared iterate — through the guard's
    restart budget.  ``telemetry.restarts`` counts those respawns.
    """
    if rescomp not in _RESCOMP:
        raise ValueError(f"rescomp must be one of {_RESCOMP}")
    if criterion not in _CRITERIA:
        raise ValueError(f"criterion must be one of {_CRITERIA}")
    if write not in _WRITES:
        raise ValueError(f"write must be one of {_WRITES}")
    if live is not None and tracer is None:
        from ..observe.tracer import Tracer as _Tracer

        tracer = _Tracer(clock="s")
    if live is not None and monitor_interval is None:
        monitor_interval = live.interval_s
    if monitor_interval is not None and monitor_interval <= 0:
        raise ValueError("monitor_interval must be positive")

    n = solver.n
    ngrids = solver.ngrids
    A = solver.A
    b_in = np.asarray(b, dtype=np.float64)
    if b_in.ndim == 1:
        k = 1
        B2 = b_in.reshape(n, 1)
    elif b_in.ndim == 2:
        k = int(b_in.shape[1])
        B2 = b_in
    else:
        raise ValueError("b must be (n,) or (n, k)")
    if B2.shape[0] != n:
        raise ValueError(f"b has {B2.shape[0]} rows, solver expects {n}")
    m = n * k

    if workers is None:
        workers = min(ngrids, os.cpu_count() or 1)
    workers = max(1, min(int(workers), ngrids))
    if deterministic:
        if workers != 1 or k != 1:
            raise ValueError("deterministic mode needs workers=1 and a single RHS")
        if faults is not None or guard is not None or rescomp == "global":
            raise ValueError(
                "deterministic mode is fault-free and engine-compatible "
                "(rescomp local/rupdate, no faults, no guard)"
            )

    if x0 is None:
        X0 = np.zeros((n, k))
    else:
        X0 = np.array(x0, dtype=np.float64).reshape(n, k)
    nb = two_norm(B2.reshape(-1)) or 1.0

    bundle = SetupBundle.from_solver(solver)
    ctx = mp.get_context("spawn")
    nstripes = max(1, -(-m // stripe)) if write == "atomic" else 1
    layout = _Layout(n=n, k=k, ngrids=ngrids, nworkers=workers, nstripes=nstripes)
    sv = SharedVectors.create(layout)

    telemetry = FaultTelemetry()
    errors: List[str] = []
    samples: List[tuple] = []
    procs: List[Any] = []
    mon: Optional[threading.Thread] = None
    monitor_stop = threading.Event()
    live_session = None
    try:
        sv.x[...] = X0
        sv.b[...] = B2
        sv.r[...] = B2 - A @ X0
        t0 = _time.monotonic()
        sv.heartbeats[...] = t0
        deadline = t0 + timeout

        locks_x = _make_locks(write, nstripes, ctx)
        locks_r = _make_locks(write, nstripes, ctx)
        xpol = make_proc_write_policy(write, m, stripe, locks_x, sv.seq_x)
        rpol = make_proc_write_policy(write, m, stripe, locks_r, sv.seq_r)
        crit = _SharedCriterion(sv.counts, sv.flags, criterion, tmax)
        grd = Guard(guard, nb, telemetry) if guard is not None else None

        owned = _assign_grids(solver.work_per_grid(), workers)
        shares = np.maximum(
            solver.work_per_grid() / solver.work_per_grid().sum(), 1e-6
        )
        cuts = np.concatenate([[0.0], np.cumsum(shares) / shares.sum()])
        row_bounds = np.round(cuts * n).astype(np.int64)
        rows = tuple(
            (int(row_bounds[g]), int(row_bounds[g + 1])) for g in range(ngrids)
        )

        cfg = _WorkerConfig(
            tmax=tmax,
            rescomp=rescomp,
            write=write,
            criterion=criterion,
            stripe=stripe,
            alpha=alpha,
            seed=seed,
            deterministic=deterministic,
            trace=tracer is not None,
            nb=nb,
            t0=t0,
            deadline=deadline,
            divergence_threshold=divergence_threshold,
            kernel_backend=kernels.current_backend(),
            guard=guard,
            faults=faults,
        )
        errq = ctx.SimpleQueue()

        def spawn(wid: int, resync: bool) -> Any:
            sv.status[wid] = _STATUS_RUNNING
            sv.heartbeats[wid] = _time.monotonic()
            p = ctx.Process(
                target=_worker_main,
                args=(
                    wid, sv.name, layout, bundle, tuple(owned[wid]), rows,
                    cfg, locks_x, locks_r, errq, resync,
                ),
                daemon=True,
            )
            p.start()
            if tracer is not None and p.pid is not None:
                tracer.register_worker_pid(f"p{wid}", p.pid)
            return p

        def sample_rel() -> float:
            if k == 1:
                return float(kernels.residual_norm(A, sv.x_flat, B2.reshape(-1)) / nb)
            rb = kernels.range_residual_block(A, np.array(sv.x), B2, 0, n)
            return float(two_norm(rb.reshape(-1)) / nb)

        if tracer is not None:
            tracer.restart_clock()
        if live is not None:
            from ..observe.live import start_live

            def _alert_stop() -> None:
                sv.flags[_FLAG_STOP] = 1
                telemetry.bump("alert_stops")

            assert tracer is not None
            live_session = start_live(
                live, tracer, backend="procs", stop_callback=_alert_stop
            )

        procs = [spawn(wid, False) for wid in range(workers)]

        def monitor() -> None:
            while not monitor_stop.is_set():
                now = _time.monotonic() - t0
                rel_s = sample_rel()  # racy read: sampling only
                samples.append((now, rel_s))
                if tracer is not None:
                    tracer.record(
                        "residual", -1, now, rel_s, 0.0, "global", worker="monitor"
                    )
                monitor_stop.wait(monitor_interval)

        if monitor_interval is not None:
            mon = threading.Thread(target=monitor, daemon=True)
            mon.start()

        # --------------------------------------------------------------
        # Supervisor: per-process liveness, restart, checkpoint/rollback,
        # trace-ring drain.  Mirrors the threaded supervisor with
        # exit-code detection instead of Thread.is_alive bookkeeping.
        # --------------------------------------------------------------
        cursors = [0] * workers
        dead = [False] * workers
        hung_flagged = [False] * workers
        stalled = False
        next_ckpt = (
            t0 + guard.checkpoint_period_s if guard is not None else float("inf")
        )
        while _time.monotonic() < deadline:
            if crit.all_done() or sv.flags[_FLAG_STOP]:
                break
            if deterministic and sv.flags[_FLAG_DET_DONE]:
                break
            now = _time.monotonic()
            for wid in range(workers):
                if dead[wid]:
                    continue
                p = procs[wid]
                w_done = all(crit.grid_done(g) for g in owned[wid])
                if p.is_alive():
                    if (
                        grd is not None
                        and guard is not None
                        and guard.watchdog
                        and not hung_flagged[wid]
                        and not w_done
                        and now - float(sv.heartbeats[wid]) > guard.watchdog_timeout
                    ):
                        hung_flagged[wid] = True
                        telemetry.bump("watchdog_detections")
                        if tracer is not None:
                            tracer.record(
                                "guard", owned[wid][0], now - t0,
                                tag="watchdog", worker="supervisor",
                            )
                    continue
                status = int(sv.status[wid])
                if w_done or status == _STATUS_OK:
                    continue
                if status == _STATUS_ERROR:
                    continue  # error queued; worker already raised stop
                # Fail-stop death (crash fault / kill): restart the whole
                # process, re-synced, while the budget lasts.
                telemetry.bump("watchdog_detections")
                if tracer is not None:
                    tracer.record(
                        "guard", owned[wid][0], now - t0,
                        tag="watchdog", worker="supervisor",
                    )
                if grd is not None and guard is not None and grd.try_restart():
                    if tracer is not None:
                        tracer.record(
                            "guard", owned[wid][0], now - t0,
                            tag="restart", worker="supervisor",
                        )
                    if guard.restart_delay:
                        _time.sleep(guard.restart_delay)
                    hung_flagged[wid] = False
                    procs[wid] = spawn(wid, True)
                else:
                    dead[wid] = True
            if any(dead):
                # A permanently dead worker's grids can never satisfy
                # the criterion; stop the survivors.
                stalled = True
                sv.flags[_FLAG_STOP] = 1
                break
            if not any(p.is_alive() for p in procs):
                break
            if grd is not None and guard is not None and now >= next_ckpt:
                x_snap = xpol.read(sv.x_flat)
                if k == 1:
                    rel_now = float(
                        kernels.residual_norm(A, x_snap, B2.reshape(-1)) / nb
                    )
                else:
                    rb = kernels.range_residual_block(
                        A, x_snap.reshape(n, k), B2, 0, n
                    )
                    rel_now = float(two_norm(rb.reshape(-1)) / nb)
                action, x_restore = grd.checkpoint_or_rollback(x_snap, rel_now)
                if tracer is not None and action != "none":
                    tracer.record(
                        "guard", -1, _time.monotonic() - t0,
                        tag=action, worker="supervisor",
                    )
                if action == "rollback" and x_restore is not None:
                    xpol.assign_slice(sv.x_flat, 0, m, x_restore)
                    if k == 1:
                        r_new = kernels.range_residual(
                            A, x_restore, B2.reshape(-1), 0, n
                        )
                    else:
                        r_new = kernels.range_residual_block(
                            A, x_restore.reshape(n, k), B2, 0, n
                        ).reshape(-1)
                    rpol.assign_slice(sv.r_flat, 0, m, r_new)
                next_ckpt = _time.monotonic() + guard.checkpoint_period_s
            if tracer is not None:
                _drain_rings(sv, tracer, cursors)
            _time.sleep(0.005)

        timed_out = _time.monotonic() >= deadline and any(
            p.is_alive() for p in procs
        )
        stop_seen = bool(sv.flags[_FLAG_STOP])
        sv.flags[_FLAG_STOP] = 1  # wind everyone down before the join
        for p in procs:
            p.join(timeout=5.0)
        for p in procs:
            if p.is_alive():  # pragma: no cover - stuck worker backstop
                p.terminate()
                p.join(timeout=1.0)
        wall = _time.monotonic() - t0
        if mon is not None:
            monitor_stop.set()
            mon.join(timeout=5.0)
        if tracer is not None:
            _drain_rings(sv, tracer, cursors)
        while not errq.empty():
            wid, tb = errq.get()
            errors.append(f"worker {wid}:\n{tb}")
        for wid in range(workers):
            row = sv.telemetry[wid]
            for i, counter in enumerate(_TEL_COUNTERS):
                v = int(row[i])
                if v:
                    telemetry.bump(counter, v)

        counts_out = np.array(sv.counts, copy=True)
        x_out = np.array(sv.x_flat, copy=True)
        rel = sample_rel()
        all_done = crit.all_done() or (
            deterministic and bool(sv.flags[_FLAG_DET_DONE])
        )
        alert_stopped = live_session is not None and live_session.stop_requested
        diverged = (
            (
                stop_seen
                and not timed_out
                and not stalled
                and not alert_stopped
                and not errors
            )
            or not np.isfinite(rel)
            or rel > divergence_threshold
        )
        if (
            not diverged
            and (timed_out or alert_stopped or (faults is not None and faults.active))
            and not all_done
        ):
            stalled = True
        stalled = stalled and not diverged
        live_summary = live_session.finish() if live_session is not None else None
        live_session = None
        return ProcsResult(
            x=x_out if b_in.ndim == 1 else x_out.reshape(n, k),
            rel_residual=rel,
            counts=counts_out,
            wall_time=wall,
            diverged=bool(diverged),
            errors=errors,
            residual_samples=samples,
            stalled=bool(stalled),
            telemetry=telemetry,
            trace_summary=tracer.summary() if tracer is not None else None,
            kernel_backend=kernels.current_backend(),
            live_summary=live_summary,
            workers=workers,
            deterministic=deterministic,
        )
    finally:
        # Teardown is unconditional: reap any stragglers, stop the
        # samplers, then unmap and unlink exactly once — the segment
        # must never outlive the run, even when a worker crashed
        # mid-solve or the parent raised.
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=1.0)
        monitor_stop.set()
        if mon is not None:
            mon.join(timeout=1.0)
        if live_session is not None:
            try:
                live_session.finish()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        sv.close()
        sv.unlink()
