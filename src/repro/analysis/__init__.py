"""Concurrency-correctness analysis for the asynchronous executors.

Three complementary layers:

- **Per-file static** (:mod:`repro.analysis.linter` +
  :mod:`repro.analysis.rules`) — an AST project linter with
  repo-specific rules (RPR001–RPR008) enforcing the concurrency
  discipline the paper's convergence results depend on: all
  shared-array access through :class:`~repro.core.writes.WritePolicy`,
  ascending striped-lock order, seeded ``Generator`` randomness,
  monotonic clocks, and the ``*Result`` dataclass contract.  Run it
  with ``python -m repro.analysis --strict`` (the CI gate) or
  ``python -m repro analyze``.

- **Whole-program static** (:mod:`repro.analysis.static`) — a
  CFG/dataflow engine, project call graph, escape analysis and
  interprocedural lockset analysis backing RPR009 (statically detected
  shared-array race) and RPR010 (cross-function lock-order violation),
  with a findings baseline ratchet (``--baseline``) and SARIF export
  (``--sarif``).  Every pass shares the parse-once
  :class:`~repro.analysis.project.ProjectIndex`.

- **Dynamic** (:mod:`repro.analysis.racecheck`) — a happens-before
  checker: :class:`CheckedWrite` wraps any write policy with per-stripe
  sequence counters and vector clocks, and a conformance run on a real
  threaded solve empirically verifies the paper's model assumptions
  (no torn reads under lock/atomic, read staleness ≤ δ, monotone read
  instants, per-grid update counts consistent with ``p_k ~ U[α, 1]``),
  producing a :class:`ModelConformanceReport`.
"""

from .linter import LintReport, default_root, lint_index, lint_source, run_linter
from .project import ParsedModule, ProjectIndex
from .racecheck import (
    CheckedWrite,
    ModelConformanceReport,
    run_conformance,
)
from .rules import ALL_RULES, Finding, Rule, rule_by_code

__all__ = [
    "ALL_RULES",
    "CheckedWrite",
    "Finding",
    "LintReport",
    "ModelConformanceReport",
    "ParsedModule",
    "ProjectIndex",
    "Rule",
    "default_root",
    "lint_index",
    "lint_source",
    "rule_by_code",
    "run_conformance",
    "run_linter",
]
