"""Per-function control-flow graphs over Python ``ast``.

The dataflow engine (:mod:`repro.analysis.static.dataflow`) runs over
these graphs.  A :class:`CFG` is a set of :class:`BasicBlock` nodes —
maximal straight-line statement sequences — connected by directed
edges; one synthetic entry block and one synthetic exit block bracket
the function.

Compound statements are *lowered* so dataflow transfer functions only
ever see simple statements:

- ``if`` / ``while`` / ``for`` produce branch and back edges in the
  usual way (the test expression stays in the header block as the
  original compound node, so analyses can read it);
- ``with`` bodies are flattened, bracketed by synthetic
  :class:`RegionEnter` / :class:`RegionExit` markers per ``withitem``
  — the hook the lockset analysis keys on.  ``with`` guarantees its
  exit runs on *every* leave (that is the point of the statement), so
  the marker pair is sound for must-analyses;
- ``try`` is handled conservatively: every block of the protected body
  gets an edge to every handler (any statement may raise), the
  ``else`` runs after a normal body, and a ``finally`` suite is a
  join block both normal and handler paths flow through;
- ``return`` / ``raise`` edge to the exit block; ``break`` /
  ``continue`` edge to the innermost loop's exit / header.

The builder is deliberately forgiving — anything it does not model
(``match``, exotic constructs) is kept as an opaque statement in the
current block, which keeps every analysis conservative rather than
wrong.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

__all__ = ["BasicBlock", "CFG", "RegionEnter", "RegionExit", "Stmt", "build_cfg"]


@dataclass(frozen=True)
class RegionEnter:
    """Synthetic marker: control entered ``with item:`` at this point."""

    node: ast.stmt
    item: ast.withitem
    lineno: int


@dataclass(frozen=True)
class RegionExit:
    """Synthetic marker: the matching ``with`` region was left."""

    node: ast.stmt
    item: ast.withitem
    lineno: int


#: what a basic block holds: real (simple or header) statements plus
#: the synthetic with-region markers
Stmt = Union[ast.stmt, RegionEnter, RegionExit]


@dataclass
class BasicBlock:
    bid: int
    stmts: List[Stmt] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = [type(s).__name__ for s in self.stmts]
        return f"BasicBlock({self.bid}, {kinds}, succs={self.succs})"


@dataclass
class CFG:
    """Control-flow graph of one function (or module toplevel)."""

    blocks: Dict[int, BasicBlock]
    entry: int
    exit: int
    func: Optional[ast.AST] = None

    def block(self, bid: int) -> BasicBlock:
        return self.blocks[bid]

    def rpo(self) -> List[int]:
        """Reverse postorder from the entry (a good worklist seed for
        forward analyses)."""
        seen: Dict[int, bool] = {}
        order: List[int] = []

        def visit(bid: int) -> None:
            stack = [(bid, iter(self.blocks[bid].succs))]
            seen[bid] = True
            while stack:
                cur, it = stack[-1]
                advanced = False
                for nxt in it:
                    if not seen.get(nxt):
                        seen[nxt] = True
                        stack.append((nxt, iter(self.blocks[nxt].succs)))
                        advanced = True
                        break
                if not advanced:
                    order.append(cur)
                    stack.pop()

        visit(self.entry)
        return list(reversed(order))

    def statements(self) -> Iterator[Tuple[int, Stmt]]:
        """All (block id, statement) pairs in block order."""
        for bid in sorted(self.blocks):
            for stmt in self.blocks[bid].stmts:
                yield bid, stmt


_JUMPS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


class _Builder:
    def __init__(self) -> None:
        self.blocks: Dict[int, BasicBlock] = {}
        self._next = 0
        self.entry = self.new_block()
        self.exit = self.new_block()
        #: (header bid, after-loop bid) stack for continue/break
        self.loops: List[Tuple[int, int]] = []

    def new_block(self) -> int:
        bid = self._next
        self._next += 1
        self.blocks[bid] = BasicBlock(bid)
        return bid

    def edge(self, a: int, b: int) -> None:
        if b not in self.blocks[a].succs:
            self.blocks[a].succs.append(b)
            self.blocks[b].preds.append(a)

    # ------------------------------------------------------------------
    def lower(self, stmts: List[ast.stmt], cur: int) -> Optional[int]:
        """Lower a statement suite into blocks starting at ``cur``.
        Returns the live fall-through block, or None if every path
        jumped away."""
        alive: Optional[int] = cur
        for stmt in stmts:
            if alive is None:
                # Unreachable code after a jump: put it in a fresh
                # orphan block so its statements still exist for
                # site-collection passes, but carry no flow.
                alive = self.new_block()
            alive = self._lower_stmt(stmt, alive)
        return alive

    def _lower_stmt(self, stmt: ast.stmt, cur: int) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, cur)
        if isinstance(stmt, (ast.While,)):
            return self._lower_while(stmt, cur)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._lower_for(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._lower_with(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._lower_try(stmt, cur)
        if isinstance(stmt, _JUMPS):
            self.blocks[cur].stmts.append(stmt)
            if isinstance(stmt, (ast.Return, ast.Raise)):
                self.edge(cur, self.exit)
            elif isinstance(stmt, ast.Break):
                if self.loops:
                    self.edge(cur, self.loops[-1][1])
                else:  # pragma: no cover - malformed input
                    self.edge(cur, self.exit)
            else:  # Continue
                if self.loops:
                    self.edge(cur, self.loops[-1][0])
                else:  # pragma: no cover - malformed input
                    self.edge(cur, self.exit)
            return None
        # Plain statement (incl. nested FunctionDef/ClassDef, which are
        # definitions — no control flow of their own at this level).
        self.blocks[cur].stmts.append(stmt)
        return cur

    def _lower_if(self, stmt: ast.If, cur: int) -> Optional[int]:
        self.blocks[cur].stmts.append(stmt)  # header (test expr)
        then_b = self.new_block()
        self.edge(cur, then_b)
        then_end = self.lower(stmt.body, then_b)
        if stmt.orelse:
            else_b = self.new_block()
            self.edge(cur, else_b)
            else_end = self.lower(stmt.orelse, else_b)
        else:
            else_end = cur  # false edge falls through
        if then_end is None and else_end is None:
            return None
        join = self.new_block()
        if then_end is not None:
            self.edge(then_end, join)
        if else_end is not None:
            self.edge(else_end, join)
        return join

    def _lower_while(self, stmt: ast.While, cur: int) -> Optional[int]:
        header = self.new_block()
        self.edge(cur, header)
        self.blocks[header].stmts.append(stmt)
        after = self.new_block()
        body_b = self.new_block()
        self.edge(header, body_b)
        self.edge(header, after)  # loop test false / loop else
        self.loops.append((header, after))
        body_end = self.lower(stmt.body, body_b)
        self.loops.pop()
        if body_end is not None:
            self.edge(body_end, header)  # back edge
        if stmt.orelse:
            else_end = self.lower(stmt.orelse, after)
            if else_end is not None and else_end != after:
                return else_end
        return after

    def _lower_for(self, stmt: Union[ast.For, ast.AsyncFor], cur: int) -> Optional[int]:
        header = self.new_block()
        self.edge(cur, header)
        self.blocks[header].stmts.append(stmt)
        after = self.new_block()
        body_b = self.new_block()
        self.edge(header, body_b)
        self.edge(header, after)  # iterator exhausted
        self.loops.append((header, after))
        body_end = self.lower(stmt.body, body_b)
        self.loops.pop()
        if body_end is not None:
            self.edge(body_end, header)
        if stmt.orelse:
            else_end = self.lower(stmt.orelse, after)
            if else_end is not None and else_end != after:
                return else_end
        return after

    def _lower_with(
        self, stmt: Union[ast.With, ast.AsyncWith], cur: int
    ) -> Optional[int]:
        for item in stmt.items:
            self.blocks[cur].stmts.append(
                RegionEnter(stmt, item, getattr(stmt, "lineno", 0))
            )
        end = self.lower(stmt.body, cur)
        end_line = getattr(stmt, "end_lineno", None) or getattr(stmt, "lineno", 0)
        if end is not None:
            for item in reversed(stmt.items):
                self.blocks[end].stmts.append(RegionExit(stmt, item, end_line))
        return end

    def _lower_try(self, stmt: ast.Try, cur: int) -> Optional[int]:
        body_b = self.new_block()
        self.edge(cur, body_b)
        before = set(self.blocks)
        body_end = self.lower(stmt.body, body_b)
        # Blocks created while lowering the body (any may raise).
        raisers = [b for b in self.blocks if b not in before or b == body_b]

        handler_ends: List[int] = []
        for handler in stmt.handlers:
            h_b = self.new_block()
            for b in raisers:
                self.edge(b, h_b)
            h_end = self.lower(handler.body, h_b)
            if h_end is not None:
                handler_ends.append(h_end)

        else_end: Optional[int] = body_end
        if stmt.orelse and body_end is not None:
            else_b = self.new_block()
            self.edge(body_end, else_b)
            else_end = self.lower(stmt.orelse, else_b)

        tails = [e for e in ([else_end] + handler_ends) if e is not None]
        if stmt.finalbody:
            fin_b = self.new_block()
            for t in tails:
                self.edge(t, fin_b)
            if not tails:
                # Every path jumped; the finally still runs on the way
                # out — approximate by wiring it from the try entry.
                self.edge(cur, fin_b)
            fin_end = self.lower(stmt.finalbody, fin_b)
            return fin_end
        if not tails:
            return None
        join = self.new_block()
        for t in tails:
            self.edge(t, join)
        return join


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of a function (``FunctionDef`` /
    ``AsyncFunctionDef``) or of a whole module's toplevel suite."""
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
        body = func.body
    else:  # pragma: no cover - defensive
        raise TypeError(f"cannot build a CFG for {type(func).__name__}")
    b = _Builder()
    start = b.new_block()
    b.edge(b.entry, start)
    end = b.lower(body, start)
    if end is not None:
        b.edge(end, b.exit)
    return CFG(blocks=b.blocks, entry=b.entry, exit=b.exit, func=func)
