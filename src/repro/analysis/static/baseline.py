"""Findings baseline — the CI ratchet.

A baseline file (``.analysis-baseline.json`` at the repo root) pins
the set of findings that existed when the gate was introduced.  CI
then *ratchets*: pinned findings do not fail the build, **new**
findings do, and the only way to grow the baseline is an explicit
``--update-baseline`` commit that reviewers see in the diff.

Fingerprints are deliberately line-number-free —
``sha256(code | path | scope | message)`` truncated to 16 hex chars —
so unrelated edits above a pinned finding do not churn the file.  Two
identical findings in one scope share a fingerprint; the baseline
stores a *count* per fingerprint and only flags a fingerprint when its
live count exceeds the pinned count.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from ..rules import Finding

__all__ = ["Baseline", "fingerprint", "apply_baseline"]

_FORMAT_VERSION = 1


def fingerprint(finding: Finding, scope: str = "") -> str:
    """Stable, line-number-free identity of one finding."""
    raw = "|".join((finding.code, finding.path, scope, finding.message))
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


@dataclass
class Baseline:
    """Pinned finding fingerprints with per-fingerprint counts."""

    entries: Dict[str, int] = field(default_factory=dict)
    version: int = _FORMAT_VERSION

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = {
            str(e["fingerprint"]): int(e.get("count", 1))
            for e in data.get("findings", [])
        }
        return cls(entries=entries, version=int(data.get("version", _FORMAT_VERSION)))

    def save(self, path: Path, details: Dict[str, Dict[str, object]] | None = None) -> None:
        findings = []
        for fp in sorted(self.entries):
            entry: Dict[str, object] = {"fingerprint": fp, "count": self.entries[fp]}
            if details and fp in details:
                entry.update(details[fp])
            findings.append(entry)
        payload = {
            "version": self.version,
            "comment": (
                "Pinned analyzer findings. New findings fail CI; regenerate "
                "deliberately with `repro analyze --update-baseline`."
            ),
            "findings": findings,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        bl = cls()
        for f in findings:
            fp = fingerprint(f)
            bl.entries[fp] = bl.entries.get(fp, 0) + 1
        return bl


def apply_baseline(
    findings: List[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[Finding]]:
    """Split ``findings`` into (new, pinned) against ``baseline``.

    For each fingerprint, up to the pinned count of findings are
    absorbed (oldest-by-line first, for determinism); any excess —
    including every finding whose fingerprint is absent — is new and
    should fail the gate.
    """
    budget = dict(baseline.entries)
    new: List[Finding] = []
    pinned: List[Finding] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.code)):
        fp = fingerprint(f)
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            pinned.append(f)
        else:
            new.append(f)
    return new, pinned


def baseline_details(findings: Iterable[Finding]) -> Dict[str, Dict[str, object]]:
    """Human-readable context stored next to each fingerprint (not part
    of the identity, so it may go stale without breaking the pin)."""
    out: Dict[str, Dict[str, object]] = {}
    for f in findings:
        fp = fingerprint(f)
        out.setdefault(
            fp,
            {"code": f.code, "path": f.path, "message": f.message},
        )
    return out
