"""Worklist dataflow engine + a small lattice library.

The engine solves classic iterative dataflow over the CFGs of
:mod:`repro.analysis.static.cfg`: an :class:`Analysis` supplies the
lattice (``join`` / ``eq``), the boundary and initial values, and a
per-statement transfer function; :func:`solve` iterates a worklist to
the least fixpoint.  Both directions are supported — ``forward``
(values flow entry -> exit, join over predecessors) and ``backward``
(exit -> entry, join over successors).

Lattices
--------
Two ready-made powerset lattices cover the analyses in this package:

- :class:`MaySet` — join = union, initial value = the empty set.  Used
  for *may* facts ("this definition may reach here"):
  :class:`ReachingDefinitions`, :class:`LiveVariables`.
- :class:`MustSet` — join = intersection, initial value = ``TOP`` (the
  set of everything, represented symbolically).  Used for *must* facts
  ("this lock is held on **every** path"): the lockset analysis of
  :mod:`repro.analysis.static.lockset`.

``TOP`` is a singleton, not a materialized universal set, so must
analyses work over unbounded token universes (lock names) without
enumerating them.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Generic, Iterator, List, Tuple, TypeVar, Union

from .cfg import CFG, BasicBlock, Stmt

__all__ = [
    "TOP",
    "MustSet",
    "MaySet",
    "Analysis",
    "DataflowSolution",
    "solve",
    "ReachingDefinitions",
    "LiveVariables",
]

T = TypeVar("T")


class _Top:
    """Symbolic greatest element for must-set lattices."""

    _instance: "_Top | None" = None

    def __new__(cls) -> "_Top":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TOP"


TOP = _Top()

#: a must-set value: TOP (everything) or a concrete frozen set
MustSet = Union[_Top, FrozenSet[object]]
#: a may-set value: a concrete frozen set (bottom = empty)
MaySet = FrozenSet[object]


def must_join(a: MustSet, b: MustSet) -> MustSet:
    """Meet of two must-sets (intersection; TOP is the identity)."""
    if isinstance(a, _Top):
        return b
    if isinstance(b, _Top):
        return a
    return a & b


def must_union(a: MustSet, items: FrozenSet[object]) -> MustSet:
    if isinstance(a, _Top):
        return a
    return a | items


def must_discard(a: MustSet, items: FrozenSet[object]) -> MustSet:
    if isinstance(a, _Top):
        return a
    return a - items


class Analysis(ABC, Generic[T]):
    """One dataflow problem: lattice + transfer functions."""

    direction: str = "forward"

    @abstractmethod
    def boundary(self) -> T:
        """Value at the entry (forward) / exit (backward) block."""

    @abstractmethod
    def init(self) -> T:
        """Optimistic initial value for every other block."""

    @abstractmethod
    def join(self, a: T, b: T) -> T:
        """Least upper bound of two values."""

    def eq(self, a: T, b: T) -> bool:
        return bool(a == b)

    @abstractmethod
    def transfer(self, stmt: Stmt, value: T) -> T:
        """Flow ``value`` through one lowered statement."""

    def transfer_block(self, block: BasicBlock, value: T) -> T:
        stmts: List[Stmt] = block.stmts
        if self.direction == "backward":
            stmts = list(reversed(stmts))
        for stmt in stmts:
            value = self.transfer(stmt, value)
        return value


@dataclass
class DataflowSolution(Generic[T]):
    """Fixpoint values at block boundaries.

    ``block_in[b]`` is the value *entering* block ``b`` in the
    analysis' direction of travel (for a backward analysis that is the
    value at the block's end in program order), ``block_out[b]`` the
    value after its transfer.
    """

    cfg: CFG
    analysis: Analysis[T]
    block_in: Dict[int, T]
    block_out: Dict[int, T]
    iterations: int

    def stmt_values(self) -> Iterator[Tuple[int, Stmt, T]]:
        """Per-statement input values, recomputed by replaying each
        block's transfer (forward analyses only)."""
        if self.analysis.direction != "forward":
            raise ValueError("stmt_values is defined for forward analyses")
        for bid in sorted(self.cfg.blocks):
            value = self.block_in[bid]
            for stmt in self.cfg.blocks[bid].stmts:
                yield bid, stmt, value
                value = self.analysis.transfer(stmt, value)


def solve(cfg: CFG, analysis: Analysis[T], max_iterations: int = 100_000) -> DataflowSolution[T]:
    """Iterate ``analysis`` over ``cfg`` to its least fixpoint."""
    forward = analysis.direction == "forward"
    start = cfg.entry if forward else cfg.exit

    def flows_from(bid: int) -> List[int]:
        blk = cfg.blocks[bid]
        return blk.preds if forward else blk.succs

    def flows_to(bid: int) -> List[int]:
        blk = cfg.blocks[bid]
        return blk.succs if forward else blk.preds

    block_in: Dict[int, T] = {bid: analysis.init() for bid in cfg.blocks}
    block_out: Dict[int, T] = {}
    block_in[start] = analysis.boundary()

    order = cfg.rpo() if forward else list(reversed(cfg.rpo()))
    # Blocks unreachable from the entry (orphaned dead code) still get
    # a seat so site-collection passes over them terminate.
    for bid in cfg.blocks:
        if bid not in order:
            order.append(bid)
    work = deque(order)
    queued = set(order)
    iterations = 0
    while work:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - safety valve
            raise RuntimeError("dataflow did not converge")
        bid = work.popleft()
        queued.discard(bid)
        sources = flows_from(bid)
        if sources:
            value = block_out.get(sources[0], analysis.init())
            for src in sources[1:]:
                value = analysis.join(value, block_out.get(src, analysis.init()))
            if bid == start:
                value = analysis.join(value, analysis.boundary())
            block_in[bid] = value
        out = analysis.transfer_block(cfg.blocks[bid], block_in[bid])
        if bid not in block_out or not analysis.eq(block_out[bid], out):
            block_out[bid] = out
            for nxt in flows_to(bid):
                if nxt not in queued:
                    work.append(nxt)
                    queued.add(nxt)
    return DataflowSolution(
        cfg=cfg,
        analysis=analysis,
        block_in=block_in,
        block_out=block_out,
        iterations=iterations,
    )


# ----------------------------------------------------------------------
# Library analyses (also the engine's own regression instruments)
# ----------------------------------------------------------------------


def _assigned_names(target: ast.AST) -> Iterator[str]:
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            yield node.id


class ReachingDefinitions(Analysis[FrozenSet[Tuple[str, int]]]):
    """Forward may-analysis: which ``(name, lineno)`` definitions can
    reach each point."""

    direction = "forward"

    def boundary(self) -> FrozenSet[Tuple[str, int]]:
        return frozenset()

    def init(self) -> FrozenSet[Tuple[str, int]]:
        return frozenset()

    def join(
        self, a: FrozenSet[Tuple[str, int]], b: FrozenSet[Tuple[str, int]]
    ) -> FrozenSet[Tuple[str, int]]:
        return a | b

    def transfer(
        self, stmt: Stmt, value: FrozenSet[Tuple[str, int]]
    ) -> FrozenSet[Tuple[str, int]]:
        defined: List[str] = []
        lineno = getattr(stmt, "lineno", 0)
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                defined.extend(_assigned_names(t))
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            defined.extend(_assigned_names(stmt.target))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            defined.extend(_assigned_names(stmt.target))
        if not defined:
            return value
        killed = frozenset(d for d in value if d[0] in defined)
        return (value - killed) | frozenset((n, lineno) for n in defined)


class LiveVariables(Analysis[FrozenSet[str]]):
    """Backward may-analysis: which names are live (read later) at
    each point."""

    direction = "backward"

    def boundary(self) -> FrozenSet[str]:
        return frozenset()

    def init(self) -> FrozenSet[str]:
        return frozenset()

    def join(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a | b

    def transfer(self, stmt: Stmt, value: FrozenSet[str]) -> FrozenSet[str]:
        if not isinstance(stmt, ast.stmt):
            return value
        defined: set[str] = set()
        used: set[str] = set()
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                defined.update(_assigned_names(t))
            used.update(self._loads(stmt.value))
            # Subscript/attribute stores also *read* their base.
            for t in stmt.targets:
                if not isinstance(t, ast.Name):
                    used.update(self._loads(t))
        elif isinstance(stmt, ast.AugAssign):
            defined.update(_assigned_names(stmt.target))
            used.update(self._loads(stmt.value))
            used.update(self._loads(stmt.target))
        elif isinstance(stmt, (ast.If, ast.While)):
            used.update(self._loads(stmt.test))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            defined.update(_assigned_names(stmt.target))
            used.update(self._loads(stmt.iter))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                used.update(self._loads(stmt.value))
        elif isinstance(stmt, ast.Expr):
            used.update(self._loads(stmt.value))
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    used.update(self._loads(child))
        return (value - defined) | used

    @staticmethod
    def _loads(node: ast.AST) -> Iterator[str]:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                yield sub.id
