"""Whole-program static concurrency analysis.

Layers (each usable on its own):

- :mod:`~repro.analysis.static.cfg` — per-function control-flow graphs
  with ``with``-region markers;
- :mod:`~repro.analysis.static.dataflow` — worklist fixpoint engine
  plus may/must set lattices (reaching definitions, live variables);
- :mod:`~repro.analysis.static.callgraph` — project call graph with
  alias-aware resolution (relative imports, re-exports, ``self.``
  methods, nested closures);
- :mod:`~repro.analysis.static.escape` — which arrays are *shared*
  (flow into handed-off worker closures), computed rather than
  name-matched;
- :mod:`~repro.analysis.static.lockset` — interprocedural must-hold
  locksets; produces the RPR009 (static race) and RPR010
  (lock-order) site reports;
- :mod:`~repro.analysis.static.baseline` — the findings ratchet;
- :mod:`~repro.analysis.static.sarif` — SARIF 2.1.0 export.

:func:`analyze_project` is the one-call entry the linter rules use; it
builds the call graph and escape facts once per :class:`ProjectIndex`
and memoizes on index identity.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..project import ProjectIndex
from .baseline import Baseline, apply_baseline, fingerprint
from .callgraph import CallGraph, build_callgraph
from .cfg import CFG, build_cfg
from .dataflow import LiveVariables, ReachingDefinitions, solve
from .escape import EscapeInfo, analyze_escapes
from .lockset import LocksetReport, analyze_locksets
from .sarif import to_sarif, write_sarif

__all__ = [
    "CFG",
    "build_cfg",
    "solve",
    "ReachingDefinitions",
    "LiveVariables",
    "CallGraph",
    "build_callgraph",
    "EscapeInfo",
    "analyze_escapes",
    "LocksetReport",
    "analyze_locksets",
    "analyze_project",
    "Baseline",
    "apply_baseline",
    "fingerprint",
    "to_sarif",
    "write_sarif",
]

#: memo: id(index) -> (index, callgraph, escapes, lockset report) — the
#: index reference is kept so the id cannot be recycled while cached
_CACHE: Dict[int, Tuple[ProjectIndex, CallGraph, Dict[str, EscapeInfo], LocksetReport]] = {}
_CACHE_LIMIT = 8


def analyze_project(index: ProjectIndex) -> Tuple[CallGraph, Dict[str, EscapeInfo], LocksetReport]:
    """Call graph + escape facts + lockset report for ``index``,
    computed once per index object (RPR009 and RPR010 share it)."""
    key = id(index)
    hit = _CACHE.get(key)
    if hit is not None and hit[0] is index:
        return hit[1], hit[2], hit[3]
    cg = build_callgraph(index)
    escapes = analyze_escapes(cg)
    report = analyze_locksets(cg, escapes)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.clear()
    _CACHE[key] = (index, cg, escapes, report)
    return cg, escapes, report
