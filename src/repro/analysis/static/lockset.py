"""Interprocedural lockset analysis (Eraser / RacerD style).

Two questions are answered statically, over the whole project:

**RPR009 — is every shared-array write protected?**  A *raw* write
(``x += e``, ``r[lo:hi] = v``) to a shared array must happen with a
non-empty **must-hold lockset**, or go through a write policy
(``xpol.add(x, e)`` — the policy owns the synchronization).  "Shared"
is computed by the escape analysis (arrays flowing into handed-off
worker closures) and propagated through call-site argument bindings:
a helper that receives the shared iterate and writes it raw is flagged
even though the helper itself never spawned a thread.

**RPR010 — are locks acquired in one global order?**  Every
acquisition observed while other locks are (must-)held contributes an
edge ``held -> acquired`` to a project-wide lock-order graph; a cycle
means two code paths disagree about the order (the classic AB/BA
deadlock), and an acquisition from a striped collection while a
*caller* already holds a stripe of the same collection breaks
``AtomicWrite``'s ascending-sweep argument across function boundaries
(the per-function case is RPR002's).

Mechanics
---------
Per function, a forward **must** dataflow (:class:`LockHeld`, solved by
the worklist engine over the lowered CFG) tracks the set of held lock
tokens through ``with`` regions and ``.acquire()``/``.release()``
pairs, honoring aliases like ``lock = self._locks[s]``.  Tokens are
canonicalized against the lexical scope chain (``module:Class.attr``,
``module:func.name``) so the same lock object names the same token in
every function that touches it.  Summaries (raw-write sites, acquire
sites, call sites — each with its local lockset) are then propagated
over the call graph:

- *context locksets* (must): the locks every caller provably holds
  around a call, intersected over all call sites — seeded empty at
  escape roots (a spawned thread holds nothing);
- *shared-ness* (may): unioned along argument bindings.

A write is reported when ``context ∪ local`` is empty; order edges use
``context ∪ local`` as the held side.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from .callgraph import CallGraph, CallSite, FunctionInfo, walk_own
from .cfg import RegionEnter, RegionExit, Stmt, build_cfg
from .dataflow import TOP, Analysis, MustSet, _Top, must_discard, must_join, must_union, solve
from .escape import EscapeInfo, _bound_names, analyze_escapes

__all__ = [
    "LockToken",
    "WriteSite",
    "AcquireSite",
    "FunctionSummary",
    "SiteReport",
    "LocksetReport",
    "summarize_function",
    "analyze_locksets",
]

#: methods that delegate a shared write to a WritePolicy
_POLICY_WRITE_METHODS = frozenset({"add", "assign_slice"})
#: call that constructs a policy
_POLICY_FACTORY = "make_write_policy"


@dataclass(frozen=True)
class LockToken:
    """Canonical identity of one lock (or one stripe collection slot)."""

    key: str
    collection: Optional[str] = None
    display: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Lock({self.display or self.key})"


@dataclass
class WriteSite:
    """One raw mutation of a name-based target."""

    func: str
    node: ast.stmt
    target: str
    held: MustSet


@dataclass
class AcquireSite:
    """One lock acquisition (with-entry or ``.acquire()``)."""

    func: str
    node: Union[ast.stmt, RegionEnter]
    token: LockToken
    held: MustSet
    lineno: int


@dataclass
class CallRecord:
    """One resolved call with the lockset held around it."""

    func: str
    site: CallSite
    callee: str
    held: MustSet
    argmap: Dict[str, str] = field(default_factory=dict)
    """callee param name -> caller argument name (Name args only)"""


@dataclass
class FunctionSummary:
    info: FunctionInfo
    writes: List[WriteSite] = field(default_factory=list)
    acquires: List[AcquireSite] = field(default_factory=list)
    calls: List[CallRecord] = field(default_factory=list)
    covered_targets: Set[str] = field(default_factory=set)
    """names written *through a policy* in this function"""
    policy_vars: Set[str] = field(default_factory=set)


@dataclass
class SiteReport:
    """One finding-shaped fact (the rules wrap these into Findings)."""

    relpath: str
    node: Union[ast.stmt, RegionEnter]
    lineno: int
    col: int
    message: str
    func: str


@dataclass
class LocksetReport:
    races: List[SiteReport] = field(default_factory=list)
    order_violations: List[SiteReport] = field(default_factory=list)
    shared: Dict[str, Set[str]] = field(default_factory=dict)
    """function qualname -> shared names seen there"""
    contexts: Dict[str, MustSet] = field(default_factory=dict)
    summaries: Dict[str, FunctionSummary] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Token canonicalization
# ----------------------------------------------------------------------


def _lockish_name(name: str) -> bool:
    low = name.lower()
    return "lock" in low and "block" not in low


class _Scope:
    """Resolves where a bare name is bound, walking the lexical chain."""

    def __init__(self, cg: CallGraph, info: FunctionInfo) -> None:
        self.cg = cg
        self.info = info
        self._locals: Dict[str, Set[str]] = {}

    def _local_names(self, qual: str) -> Set[str]:
        if qual not in self._locals:
            fn = self.cg.functions.get(qual)
            self._locals[qual] = _bound_names(fn.node) if fn is not None else set()
        return self._locals[qual]

    def owner_of(self, name: str) -> str:
        qual: Optional[str] = self.info.qualname
        while qual is not None:
            if name in self._local_names(qual):
                return qual
            fn = self.cg.functions.get(qual)
            qual = fn.parent if fn is not None else None
        return f"{self.info.module}:"  # module-global


def _canon_expr(expr: ast.expr, scope: _Scope, info: FunctionInfo) -> Optional[str]:
    """Canonical string for a lock-bearing expression, or None."""
    if isinstance(expr, ast.Name):
        return f"{scope.owner_of(expr.id)}.{expr.id}"
    if isinstance(expr, ast.Attribute):
        base = expr.value
        if isinstance(base, ast.Name) and base.id == "self" and info.class_name:
            return f"{info.module}:{info.class_name}.{expr.attr}"
        inner = _canon_expr(base, scope, info)
        if inner is None:
            return None
        return f"{inner}.{expr.attr}"
    if isinstance(expr, ast.Subscript):
        return _canon_expr(expr.value, scope, info)
    if isinstance(expr, ast.Call):
        # `with threading.Lock():` — a per-site anonymous lock.
        return f"{info.qualname}.<anon@{getattr(expr, 'lineno', 0)}>"
    return None


def _terminal_name(expr: ast.expr) -> str:
    node: ast.expr = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Attribute):
            return fn.attr
        if isinstance(fn, ast.Name):
            return fn.id
    return ""


def _subscript_index_repr(expr: ast.expr) -> str:
    if isinstance(expr, ast.Subscript):
        idx = expr.slice
        if isinstance(idx, ast.Constant):
            return repr(idx.value)
        return "*"
    return ""


def lock_token(
    expr: ast.expr,
    scope: _Scope,
    info: FunctionInfo,
    aliases: Dict[str, ast.expr],
    _depth: int = 0,
) -> Optional[LockToken]:
    """Token for ``expr`` when it denotes a lock, else None."""
    if _depth > 4:
        return None
    # Alias chase: `lock = self._locks[s]` makes `lock` a lock name.
    if isinstance(expr, ast.Name) and expr.id in aliases:
        return lock_token(aliases[expr.id], scope, info, aliases, _depth + 1)
    name = _terminal_name(expr)
    is_ctor = False
    if isinstance(expr, ast.Call):
        fn = expr.func
        ctor = fn.attr if isinstance(fn, ast.Attribute) else (
            fn.id if isinstance(fn, ast.Name) else ""
        )
        is_ctor = ctor in {"Lock", "RLock", "Semaphore", "BoundedSemaphore"}
    if not is_ctor and not _lockish_name(name):
        return None
    canon = _canon_expr(expr, scope, info)
    if canon is None:
        return None
    if isinstance(expr, ast.Subscript):
        idx = _subscript_index_repr(expr)
        return LockToken(
            key=f"{canon}[{idx}]",
            collection=canon,
            display=f"{name}[{idx}]",
        )
    return LockToken(key=canon, collection=None, display=name)


# ----------------------------------------------------------------------
# Per-function must-lockset dataflow
# ----------------------------------------------------------------------


class LockHeld(Analysis[MustSet]):
    """Forward must-analysis: locks held on every path to a point."""

    direction = "forward"

    def __init__(
        self,
        scope: _Scope,
        info: FunctionInfo,
        aliases: Dict[str, ast.expr],
    ) -> None:
        self.scope = scope
        self.info = info
        self.aliases = aliases

    def boundary(self) -> MustSet:
        return frozenset()

    def init(self) -> MustSet:
        return TOP

    def join(self, a: MustSet, b: MustSet) -> MustSet:
        return must_join(a, b)

    def eq(self, a: MustSet, b: MustSet) -> bool:
        if isinstance(a, _Top) or isinstance(b, _Top):
            return isinstance(a, _Top) and isinstance(b, _Top)
        return a == b

    def _token_of(self, expr: ast.expr) -> Optional[LockToken]:
        return lock_token(expr, self.scope, self.info, self.aliases)

    def transfer(self, stmt: Stmt, value: MustSet) -> MustSet:
        if isinstance(stmt, RegionEnter):
            token = self._token_of(stmt.item.context_expr)
            if token is not None:
                return must_union(value, frozenset({token}))
            return value
        if isinstance(stmt, RegionExit):
            token = self._token_of(stmt.item.context_expr)
            if token is not None:
                return must_discard(value, frozenset({token}))
            return value
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            fn = stmt.value.func
            if isinstance(fn, ast.Attribute) and fn.attr in ("acquire", "release"):
                token = self._token_of(fn.value)
                if token is not None:
                    if fn.attr == "acquire":
                        return must_union(value, frozenset({token}))
                    return must_discard(value, frozenset({token}))
        return value


def _concrete(held: MustSet) -> FrozenSet[LockToken]:
    if isinstance(held, _Top):
        return frozenset()
    return frozenset(t for t in held if isinstance(t, LockToken))


def _must_eq(a: MustSet, b: MustSet) -> bool:
    if isinstance(a, _Top) or isinstance(b, _Top):
        return isinstance(a, _Top) and isinstance(b, _Top)
    return a == b


def _stmt_call_roots(stmt: Stmt) -> List[ast.AST]:
    """Sub-expressions of ``stmt`` evaluated *at this program point*.

    Compound headers only evaluate their test/iterator here — their
    bodies live in other blocks — and nested ``def`` bodies belong to
    the nested function's own summary."""
    if isinstance(stmt, (RegionEnter, RegionExit)):
        return []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(
        stmt,
        (ast.Try, ast.With, ast.AsyncWith, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
    ):
        return []
    return [stmt]


def _calls_at(stmt: Stmt) -> List[ast.Call]:
    out: List[ast.Call] = []
    stack: List[ast.AST] = list(_stmt_call_roots(stmt))
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(cur, ast.Call):
            out.append(cur)
        stack.extend(ast.iter_child_nodes(cur))
    return out


def _lock_aliases(
    info: FunctionInfo, scope: _Scope
) -> Dict[str, ast.expr]:
    """Syntactic alias map: local name -> lock expression it was
    assigned from (``lock = self._locks[s]``)."""
    aliases: Dict[str, ast.expr] = {}
    for node in walk_own(info.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        term = _terminal_name(node.value)
        if _lockish_name(term) and not isinstance(node.value, ast.Call):
            aliases[target.id] = node.value
    return aliases


def _policy_vars(info: FunctionInfo) -> Set[str]:
    """Names bound to WritePolicy objects in ``info``: the factory
    result, anything wrapping a policy var, and policy-annotated
    parameters."""
    pols: Set[str] = set()
    node = info.node
    for arg in list(node.args.args) + list(node.args.kwonlyargs):
        ann = arg.annotation
        if ann is not None:
            text = ast.dump(ann)
            if "Policy" in text or "CheckedWrite" in text:
                pols.add(arg.arg)
    for _ in range(3):  # wrap chains: xpol = _TracedPolicy(xpol, ...)
        for stmt in walk_own(node):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            callee = _terminal_name(value.func)
            arg_names = {
                a.id for a in value.args if isinstance(a, ast.Name)
            } | {
                kw.value.id
                for kw in value.keywords
                if isinstance(kw.value, ast.Name)
            }
            if callee == _POLICY_FACTORY or (arg_names & pols):
                pols.add(target.id)
    return pols


def _base_name(target: ast.AST) -> str:
    node = target
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _bind_args(
    cg: CallGraph, callee: str, call: ast.Call
) -> Dict[str, str]:
    """Map callee parameter names to caller argument *names* (only
    plain-Name arguments participate in shared-ness propagation)."""
    info = cg.functions.get(callee)
    if info is None:
        return {}
    params = list(info.params)
    if info.class_name is not None and params and params[0] in ("self", "cls"):
        params = params[1:]
    out: Dict[str, str] = {}
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Name) and i < len(params):
            out[params[i]] = arg.id
    for kw in call.keywords:
        if kw.arg is not None and isinstance(kw.value, ast.Name) and kw.arg in info.params:
            out[kw.arg] = kw.value.id
    return out


def summarize_function(cg: CallGraph, info: FunctionInfo) -> FunctionSummary:
    """CFG + must-lockset pass over one function, collecting its
    write/acquire/call sites with their local locksets."""
    summary = FunctionSummary(info=info)
    scope = _Scope(cg, info)
    aliases = _lock_aliases(info, scope)
    summary.policy_vars = _policy_vars(info)
    analysis = LockHeld(scope, info, aliases)
    try:
        cfg = build_cfg(info.node)
        result = solve(cfg, analysis)
        stream = list(result.stmt_values())
    except (RecursionError, RuntimeError):  # pragma: no cover - defensive
        return summary

    # Call-site index so the dataflow value at the statement carrying a
    # call is attached to the resolved CallSite record.
    call_by_node: Dict[ast.Call, CallSite] = {
        site.node: site for site in cg.callees_of(info.qualname)
    }

    for _bid, stmt, held in stream:
        if isinstance(stmt, RegionEnter):
            token = lock_token(stmt.item.context_expr, scope, info, aliases)
            if token is not None:
                summary.acquires.append(
                    AcquireSite(
                        func=info.qualname,
                        node=stmt,
                        token=token,
                        held=held,
                        lineno=stmt.lineno,
                    )
                )
            continue
        if isinstance(stmt, RegionExit):
            continue
        # Raw writes
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Subscript)]
        for target in targets:
            name = _base_name(target)
            if name:
                summary.writes.append(
                    WriteSite(func=info.qualname, node=stmt, target=name, held=held)
                )
        # Calls within this statement: covered policy writes,
        # `.acquire()` acquisition sites, resolved call records.
        for node in _calls_at(stmt):
            fn = node.func
            if isinstance(fn, ast.Attribute):
                if fn.attr in _POLICY_WRITE_METHODS and isinstance(fn.value, ast.Name):
                    if fn.value.id in summary.policy_vars and node.args:
                        covered = node.args[0]
                        if isinstance(covered, ast.Name):
                            summary.covered_targets.add(covered.id)
                if fn.attr == "acquire":
                    token = lock_token(fn.value, scope, info, aliases)
                    if token is not None:
                        summary.acquires.append(
                            AcquireSite(
                                func=info.qualname,
                                node=stmt,
                                token=token,
                                held=held,
                                lineno=getattr(node, "lineno", stmt.lineno),
                            )
                        )
            site = call_by_node.get(node)
            if site is not None:
                for callee in site.callees:
                    summary.calls.append(
                        CallRecord(
                            func=info.qualname,
                            site=site,
                            callee=callee,
                            held=held,
                            argmap=_bind_args(cg, callee, node),
                        )
                    )
    return summary


# ----------------------------------------------------------------------
# Whole-program propagation
# ----------------------------------------------------------------------


def _compute_contexts(
    cg: CallGraph,
    summaries: Dict[str, FunctionSummary],
    roots: Set[str],
) -> Dict[str, MustSet]:
    """Context locksets: what every caller provably holds, intersected
    over all call sites; escape roots start empty."""
    contexts: Dict[str, MustSet] = {q: TOP for q in summaries}
    for root in roots:
        if root in contexts:
            contexts[root] = frozenset()
    # Functions nobody in the project calls are public entry points —
    # assume lock-free callers (the conservative Eraser default).
    for qual in summaries:
        if not cg.callers_of(qual) and qual not in roots:
            contexts[qual] = frozenset()
    changed = True
    iters = 0
    while changed and iters < 50:
        changed = False
        iters += 1
        for qual, summary in summaries.items():
            ctx_f = contexts[qual]
            if isinstance(ctx_f, _Top):
                continue
            for rec in summary.calls:
                if rec.callee not in contexts:
                    continue
                effective = must_union(ctx_f, _concrete(rec.held))
                merged = must_join(contexts[rec.callee], effective)
                if not _must_eq(contexts[rec.callee], merged):
                    contexts[rec.callee] = merged
                    changed = True
    return contexts


def _propagate_shared(
    summaries: Dict[str, FunctionSummary],
    escapes: Dict[str, EscapeInfo],
) -> Dict[str, Set[str]]:
    """May-propagation of shared-array names along argument bindings."""
    shared: Dict[str, Set[str]] = {q: set() for q in summaries}
    for qual, info in escapes.items():
        if qual in shared:
            shared[qual] |= set(info.shared)
    changed = True
    iters = 0
    while changed and iters < 50:
        changed = False
        iters += 1
        for qual, summary in summaries.items():
            if not shared[qual]:
                continue
            for rec in summary.calls:
                if rec.callee not in shared:
                    continue
                for param, arg in rec.argmap.items():
                    if arg in shared[qual] and param not in shared[rec.callee]:
                        shared[rec.callee].add(param)
                        changed = True
    return shared


def _effective(ctx: MustSet, local: MustSet) -> FrozenSet[LockToken]:
    return _concrete(ctx) | _concrete(local)


def analyze_locksets(
    cg: CallGraph, escapes: Optional[Dict[str, EscapeInfo]] = None
) -> LocksetReport:
    """Run the whole-program lockset analysis; returns raw site
    reports for the RPR009/RPR010 rules."""
    if escapes is None:
        escapes = analyze_escapes(cg)
    report = LocksetReport()
    summaries: Dict[str, FunctionSummary] = {}
    for qual, info in cg.functions.items():
        summaries[qual] = summarize_function(cg, info)
    report.summaries = summaries

    roots: Set[str] = set()
    for info_e in escapes.values():
        roots.update(info_e.escaping_closures)
    contexts = _compute_contexts(cg, summaries, roots)
    shared = _propagate_shared(summaries, escapes)
    report.contexts = contexts
    report.shared = shared

    # ---- RPR009: unprotected shared writes ---------------------------
    for qual, summary in summaries.items():
        shared_here = shared.get(qual, set())
        if not shared_here:
            continue
        ctx = contexts.get(qual, TOP)
        if isinstance(ctx, _Top):
            continue  # unreachable from any entry — nothing to prove
        for w in summary.writes:
            if w.target not in shared_here:
                continue
            # A policy call elsewhere does not excuse a raw write to the
            # same name — policy calls are simply not in `writes`.
            eff = _effective(ctx, w.held)
            if eff:
                continue
            origin = "escaping array" if qual in escapes and w.target in escapes[
                qual
            ].shared else "shared argument"
            report.races.append(
                SiteReport(
                    relpath=summary.info.relpath,
                    node=w.node,
                    lineno=getattr(w.node, "lineno", 1),
                    col=getattr(w.node, "col_offset", 0),
                    message=(
                        f"write to shared array {w.target!r} ({origin}) with an "
                        "empty lockset and no covering write policy"
                    ),
                    func=qual,
                )
            )

    # ---- RPR010: lock-order edges, cycles, cross-function stripes ----
    @dataclass
    class _Edge:
        src: LockToken
        dst: LockToken
        site: AcquireSite
        relpath: str
        from_context: bool

    edges: List[_Edge] = []
    seen_sites: Set[Tuple[str, int, str]] = set()
    for qual, summary in summaries.items():
        ctx = contexts.get(qual, TOP)
        ctx_tokens = _concrete(ctx)
        for acq in summary.acquires:
            local_tokens = _concrete(acq.held)
            for holder in ctx_tokens | local_tokens:
                if holder.key == acq.token.key:
                    continue
                edges.append(
                    _Edge(
                        src=holder,
                        dst=acq.token,
                        site=acq,
                        relpath=summary.info.relpath,
                        from_context=holder in ctx_tokens and holder not in local_tokens,
                    )
                )
            # Same-collection stripes across a call boundary.  Checked
            # directly (not via the edge list) because two "*"-indexed
            # stripes of one collection share a token key — the very
            # case the cycle graph's self-edge skip must not see.
            for holder in ctx_tokens:
                if holder in local_tokens:
                    continue  # held locally too — RPR002's territory
                if (
                    holder.collection is None
                    or holder.collection != acq.token.collection
                ):
                    continue
                key = (summary.info.relpath, acq.lineno, "stripe")
                if key in seen_sites:
                    continue
                seen_sites.add(key)
                report.order_violations.append(
                    SiteReport(
                        relpath=summary.info.relpath,
                        node=acq.node,
                        lineno=acq.lineno,
                        col=0,
                        message=(
                            f"stripe lock {acq.token.display!r} acquired while a "
                            f"caller already holds a lock from the same collection "
                            f"({holder.display!r}) — ascending order cannot be "
                            "proven across the call"
                        ),
                        func=acq.func,
                    )
                )

    # Cycles in the order graph (AB/BA inversions).
    graph: Dict[str, Set[str]] = {}
    for edge in edges:
        graph.setdefault(edge.src.key, set()).add(edge.dst.key)
        graph.setdefault(edge.dst.key, set())
    in_cycle = _cycle_nodes(graph)
    for edge in edges:
        if edge.src.key in in_cycle and edge.dst.key in in_cycle:
            key = (edge.relpath, edge.site.lineno, "cycle")
            if key in seen_sites:
                continue
            seen_sites.add(key)
            report.order_violations.append(
                SiteReport(
                    relpath=edge.relpath,
                    node=edge.site.node,
                    lineno=edge.site.lineno,
                    col=0,
                    message=(
                        f"lock {edge.dst.display!r} acquired while holding "
                        f"{edge.src.display!r}, but another code path acquires "
                        "them in the opposite order (deadlock cycle)"
                    ),
                    func=edge.site.func,
                )
            )
    return report


def _cycle_nodes(graph: Dict[str, Set[str]]) -> Set[str]:
    """Nodes on some directed cycle (members of a non-trivial SCC)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    result: Set[str] = set()

    def strongconnect(v: str) -> None:
        work: List[Tuple[str, Optional[str], List[str]]] = [
            (v, None, list(graph.get(v, ())))
        ]
        while work:
            node, parent, succs = work[-1]
            if node not in index:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            while succs:
                w = succs.pop()
                if w not in index:
                    work.append((w, node, list(graph.get(w, ()))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    w2 = stack.pop()
                    on_stack.discard(w2)
                    component.append(w2)
                    if w2 == node:
                        break
                if len(component) > 1:
                    result.update(component)
            work.pop()
            if parent is not None:
                low[parent] = min(low[parent], low[node])

    for v in list(graph):
        if v not in index:
            strongconnect(v)
    return result
