"""Project call graph with alias-aware resolution.

Builds, from a :class:`~repro.analysis.project.ProjectIndex`, a graph
of every function/method in the project and the calls between them.
Resolution covers the shapes that actually occur in ``src/repro``:

- **module-level calls** — ``two_norm(x)`` where ``two_norm`` was
  imported via ``from ..linalg import two_norm`` (relative imports are
  resolved against the module's dotted path, and re-export chains
  through ``__init__`` modules are followed);
- **module-attribute calls** — ``kernels.range_matvec(...)`` where
  ``kernels`` is a project module imported as an alias;
- **``self.`` method calls** — resolved against the enclosing class,
  then its project-local base classes (single level chains are walked
  by name through the import table);
- **nested functions** — ``worker()`` inside ``run_threaded`` resolves
  to the closure, which is what lets the lockset analysis follow a
  helper call out of a thread body.

Calls whose receiver cannot be typed statically (``xpol.add(...)``)
are kept as unresolved :class:`CallSite` records — downstream passes
apply their own policy (the lockset analysis, for instance, treats
``.add``/``.assign_slice`` on a write-policy variable as a *covered*
write rather than guessing an implementation).

Qualified names are ``module:Class.method`` / ``module:func`` /
``module:outer.inner`` (nested functions use the lexical chain).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..project import ParsedModule, ProjectIndex

__all__ = ["FunctionInfo", "ClassInfo", "CallSite", "CallGraph", "build_callgraph"]

FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionInfo:
    """One function, method, or nested closure in the project."""

    qualname: str
    module: str
    relpath: str
    node: FuncNode
    class_name: Optional[str] = None
    parent: Optional[str] = None
    """Qualname of the lexically enclosing function, if nested."""
    params: List[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassInfo:
    qualname: str
    module: str
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)
    """method name -> function qualname"""
    base_names: List[str] = field(default_factory=list)
    """syntactic base-class names, resolved lazily through imports"""


@dataclass
class CallSite:
    """One call expression inside a function."""

    node: ast.Call
    callees: List[str]
    """Resolved callee qualnames (empty when unresolvable)."""
    kind: str
    """'name' | 'self' | 'module' | 'method'"""
    receiver: Optional[str] = None
    """Receiver identifier for attribute calls (``xpol`` in
    ``xpol.add(...)``), used by duck-typed downstream policies."""
    attr: Optional[str] = None
    """Attribute name for attribute calls."""


@dataclass
class CallGraph:
    index: ProjectIndex
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    calls: Dict[str, List[CallSite]] = field(default_factory=dict)
    callers: Dict[str, List[Tuple[str, CallSite]]] = field(default_factory=dict)
    imports: Dict[str, Dict[str, str]] = field(default_factory=dict)
    """module name -> {local alias: 'target.module' or 'target.module:name'}"""

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def callees_of(self, qualname: str) -> List[CallSite]:
        return self.calls.get(qualname, [])

    def callers_of(self, qualname: str) -> List[Tuple[str, CallSite]]:
        return self.callers.get(qualname, [])

    def resolve_class(self, module: str, name: str) -> Optional[ClassInfo]:
        """Resolve a class name as seen from ``module`` (local class or
        imported project class)."""
        ci = self.classes.get(f"{module}:{name}")
        if ci is not None:
            return ci
        target = self.imports.get(module, {}).get(name)
        if target and ":" in target:
            tmod, tname = target.split(":", 1)
            return self.classes.get(f"{tmod}:{tname}")
        return None

    def method_in_class(self, ci: ClassInfo, method: str) -> Optional[str]:
        """Find ``method`` on ``ci`` or its project-local bases."""
        seen = set()
        stack = [ci]
        while stack:
            cur = stack.pop()
            if cur.qualname in seen:
                continue
            seen.add(cur.qualname)
            if method in cur.methods:
                return cur.methods[method]
            for base in cur.base_names:
                base_ci = self.resolve_class(cur.module, base)
                if base_ci is not None:
                    stack.append(base_ci)
        return None


def _parent_package(module: str, level: int) -> str:
    """Package obtained by going ``level`` dots up from ``module``
    (PEP 328 relative-import semantics for plain modules)."""
    parts = module.split(".") if module else []
    # level=1 is the module's own package.
    drop = level
    if drop > len(parts):
        return ""
    return ".".join(parts[: len(parts) - drop])


def _collect_imports(mod: ParsedModule, index: ProjectIndex) -> Dict[str, str]:
    """Local alias -> project target ('mod' or 'mod:name'); names from
    outside the indexed root (numpy, threading, ...) are skipped."""
    table: Dict[str, str] = {}
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = alias.name
                local = alias.asname or alias.name.split(".")[0]
                if index.resolve_module(target) is not None:
                    table[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # PEP 328: level 1 anchors at the containing package —
                # which is the module itself when it *is* a package
                # (__init__.py), its parent otherwise.
                is_pkg = (
                    mod.relpath.replace("\\", "/").endswith("__init__.py")
                    or mod.module == ""
                )
                anchor = mod.module if is_pkg else _parent_package(mod.module, 1)
                base = _parent_package(anchor, node.level - 1)
                src = f"{base}.{node.module}" if node.module and base else (
                    node.module or base
                )
            else:
                src = node.module or ""
            if index.resolve_module(src) is None:
                # `from . import kernels` — the *name* may be a module.
                for alias in node.names:
                    cand = f"{src}.{alias.name}" if src else alias.name
                    if index.resolve_module(cand) is not None:
                        table[alias.asname or alias.name] = cand
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                cand = f"{src}.{alias.name}" if src else alias.name
                if index.resolve_module(cand) is not None:
                    table[local] = cand
                else:
                    table[local] = f"{src}:{alias.name}"
    return table


def _follow_reexports(cg: CallGraph, target: str, depth: int = 0) -> str:
    """Follow ``pkg:name`` through ``__init__`` re-export chains to the
    defining module."""
    if depth > 8 or ":" not in target:
        return target
    mod, name = target.split(":", 1)
    if f"{mod}:{name}" in cg.functions or f"{mod}:{name}" in cg.classes:
        return target
    nxt = cg.imports.get(mod, {}).get(name)
    if nxt is None:
        return target
    if ":" not in nxt:
        # alias of a whole module — not a function target
        return target
    return _follow_reexports(cg, nxt, depth + 1)


class _Collector(ast.NodeVisitor):
    """Collect functions/classes of one module with lexical context."""

    def __init__(self, cg: CallGraph, mod: ParsedModule) -> None:
        self.cg = cg
        self.mod = mod
        self.class_stack: List[ClassInfo] = []
        self.func_stack: List[str] = []

    def _qual(self, name: str) -> str:
        if self.func_stack:
            return f"{self.func_stack[-1]}.{name}"
        if self.class_stack:
            return f"{self.mod.module}:{self.class_stack[-1].node.name}.{name}"
        return f"{self.mod.module}:{name}"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = f"{self.mod.module}:{node.name}"
        ci = ClassInfo(
            qualname=qual,
            module=self.mod.module,
            node=node,
            base_names=[b.id for b in node.bases if isinstance(b, ast.Name)]
            + [b.attr for b in node.bases if isinstance(b, ast.Attribute)],
        )
        self.cg.classes[qual] = ci
        self.class_stack.append(ci)
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_func(self, node: FuncNode) -> None:
        qual = self._qual(node.name)
        args = node.args
        params = (
            [a.arg for a in getattr(args, "posonlyargs", [])]
            + [a.arg for a in args.args]
            + ([args.vararg.arg] if args.vararg else [])
            + [a.arg for a in args.kwonlyargs]
            + ([args.kwarg.arg] if args.kwarg else [])
        )
        info = FunctionInfo(
            qualname=qual,
            module=self.mod.module,
            relpath=self.mod.relpath,
            node=node,
            class_name=(
                self.class_stack[-1].node.name
                if self.class_stack and not self.func_stack
                else None
            ),
            parent=self.func_stack[-1] if self.func_stack else None,
            params=params,
        )
        self.cg.functions[qual] = info
        if info.class_name is not None:
            self.class_stack[-1].methods[node.name] = qual
        self.func_stack.append(qual)
        self.generic_visit(node)
        self.func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node)


def _resolve_call(
    cg: CallGraph, info: FunctionInfo, call: ast.Call
) -> CallSite:
    fn = call.func
    module = info.module
    imports = cg.imports.get(module, {})
    if isinstance(fn, ast.Name):
        name = fn.id
        # 1. nested function / sibling closure in the lexical chain
        scope: Optional[str] = info.qualname
        while scope is not None:
            cand = f"{scope}.{name}"
            if cand in cg.functions:
                return CallSite(call, [cand], "name")
            parent_info = cg.functions.get(scope)
            scope = parent_info.parent if parent_info is not None else None
        # 2. module-level function in this module
        cand = f"{module}:{name}"
        if cand in cg.functions:
            return CallSite(call, [cand], "name")
        # 2b. class constructor in this module / imported
        ci = cg.resolve_class(module, name)
        if ci is not None:
            init = cg.method_in_class(ci, "__init__")
            return CallSite(call, [init] if init else [], "name")
        # 3. imported name
        target = imports.get(name)
        if target is not None and ":" in target:
            target = _follow_reexports(cg, target)
            if target in cg.functions:
                return CallSite(call, [target], "name")
        return CallSite(call, [], "name")
    if isinstance(fn, ast.Attribute):
        attr = fn.attr
        recv = fn.value
        if isinstance(recv, ast.Name):
            if recv.id == "self" and info.class_name is not None:
                ci = cg.classes.get(f"{module}:{info.class_name}")
                if ci is not None:
                    target2 = cg.method_in_class(ci, attr)
                    if target2 is not None:
                        return CallSite(call, [target2], "self", receiver="self", attr=attr)
                return CallSite(call, [], "self", receiver="self", attr=attr)
            # module alias: kernels.range_matvec(...)
            target3 = imports.get(recv.id)
            if target3 is not None and ":" not in target3:
                cand = _follow_reexports(cg, f"{target3}:{attr}")
                if cand in cg.functions:
                    return CallSite(call, [cand], "module", receiver=recv.id, attr=attr)
                return CallSite(call, [], "module", receiver=recv.id, attr=attr)
            return CallSite(call, [], "method", receiver=recv.id, attr=attr)
        return CallSite(call, [], "method", receiver=None, attr=attr)
    return CallSite(call, [], "method")


def walk_own(node: ast.AST) -> List[ast.AST]:
    """Every AST node lexically inside ``node`` but *outside* nested
    function/class definitions (those are their own graph nodes)."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        out.append(cur)
        stack.extend(ast.iter_child_nodes(cur))
    return out


def own_calls(info: FunctionInfo) -> List[ast.Call]:
    """Every call expression lexically inside ``info`` but outside its
    nested functions."""
    return [n for n in walk_own(info.node) if isinstance(n, ast.Call)]


def build_callgraph(index: ProjectIndex) -> CallGraph:
    """Index every function and resolve every call site, once."""
    cg = CallGraph(index=index)
    for mod in index:
        cg.imports[mod.module] = {}
    for mod in index:
        _Collector(cg, mod).visit(mod.tree)
    for mod in index:
        cg.imports[mod.module] = _collect_imports(mod, index)
    for info in cg.functions.values():
        sites: List[CallSite] = []
        for call in own_calls(info):
            sites.append(_resolve_call(cg, info, call))
        cg.calls[info.qualname] = sites
        for site in sites:
            for callee in site.callees:
                cg.callers.setdefault(callee, []).append((info.qualname, site))
    return cg
