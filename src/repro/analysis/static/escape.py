"""Shared-state escape analysis.

"Shared" used to be a name list (``x``, ``r``, ``x_true`` in RPR001);
here it is *computed*: an array is shared when it is created in a
function's setup and **flows into a worker closure** that the function
hands off as a value — ``threading.Thread(target=worker)`` in
``run_threaded``, an executor ``submit``, a callback registration.
Once a closure escapes, every array free in it is concurrently
reachable, and the lockset analysis holds raw writes to those arrays
(and to anything they are passed to) to the write-policy contract.

Detection, per function ``F``:

1. **array-valued locals** — names assigned from a NumPy constructor
   (``np.zeros(n)``, ``np.array(x0)``...), from ``<expr>.copy()``, or
   from an expression containing a matrix product (``b - A @ x``);
   single-step copy propagation covers ``y = x`` chains;
2. **escaping closures** — nested ``def``s whose *name is referenced
   as a value* in ``F``'s own body (an argument, a keyword like
   ``target=``, a container element, an assignment RHS) rather than
   only called;
3. ``shared(F)`` = array locals of ``F`` that occur free in at least
   one escaping closure.  The same set is attributed to each escaping
   closure (they all race on it).

``global``/``nonlocal`` declarations are honored when computing a
closure's free names.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from .callgraph import CallGraph, FunctionInfo, walk_own

__all__ = ["EscapeInfo", "analyze_escapes", "array_locals", "escaping_closures"]

#: NumPy array-constructor names (terminal attribute of the call)
_ARRAY_CTORS = frozenset(
    {
        "zeros",
        "empty",
        "ones",
        "full",
        "array",
        "asarray",
        "arange",
        "linspace",
        "copy",
        "zeros_like",
        "empty_like",
        "ones_like",
        "full_like",
    }
)


@dataclass
class EscapeInfo:
    """Escape facts of one setup function."""

    func: str
    shared: Dict[str, int] = field(default_factory=dict)
    """shared array name -> creation line"""
    escaping_closures: List[str] = field(default_factory=list)
    """qualnames of closures handed off as values"""


def _is_array_expr(expr: ast.expr, known_arrays: Set[str]) -> bool:
    """Heuristic: does ``expr`` produce a NumPy array?"""
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Attribute) and fn.attr in _ARRAY_CTORS:
                return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            return True
        if isinstance(node, ast.Name) and node.id in known_arrays:
            if isinstance(expr, (ast.Name, ast.BinOp, ast.IfExp)):
                return True
    return False


def array_locals(info: FunctionInfo) -> Dict[str, int]:
    """Names of array-valued locals of ``info`` (created in its own
    body) -> first creation line."""
    created: Dict[str, int] = {}
    # Two passes so `y = x` after `x = np.zeros(n)` is picked up.
    for _ in range(2):
        for node in walk_own(info.node):
            if not isinstance(node, ast.Assign):
                continue
            if not _is_array_expr(node.value, set(created)):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    created.setdefault(target.id, node.lineno)
    return created


def _bound_names(fn: ast.AST) -> Set[str]:
    """Names bound inside a function (params, assignments, loop
    targets, with-as, imports), minus nonlocal/global declarations."""
    bound: Set[str] = set()
    free_decl: Set[str] = set()
    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = fn.args
        bound.update(a.arg for a in getattr(args, "posonlyargs", []))
        bound.update(a.arg for a in args.args)
        bound.update(a.arg for a in args.kwonlyargs)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
    for node in walk_own(fn):
        if isinstance(node, (ast.Nonlocal, ast.Global)):
            free_decl.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
    return bound - free_decl


def _nested_def_names(fn: ast.AST) -> Set[str]:
    names: Set[str] = set()
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(cur.name)
            continue
        if isinstance(cur, ast.ClassDef):
            names.add(cur.name)
            continue
        stack.extend(ast.iter_child_nodes(cur))
    return names


def free_names(fn: ast.AST) -> FrozenSet[str]:
    """Names read inside ``fn`` (including inside its own nested defs)
    that are not bound locally — the closure's free variables."""
    bound = _bound_names(fn) | _nested_def_names(fn)
    used: Set[str] = set()
    body = fn.body if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)) else []
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                used.add(node.id)
    return frozenset(used - bound)


def escaping_closures(cg: CallGraph, info: FunctionInfo) -> List[FunctionInfo]:
    """Nested functions of ``info`` whose names are used as *values*
    (not just called) in ``info``'s own body."""
    nested = {
        f.name: f
        for f in cg.functions.values()
        if f.parent == info.qualname
    }
    if not nested:
        return []
    escaped: Dict[str, FunctionInfo] = {}
    # Parent links let us skip Name nodes that are a call's callee.
    parents: Dict[ast.AST, ast.AST] = {}
    for node in walk_own(info.node):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    for node in walk_own(info.node):
        if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
            continue
        if node.id not in nested:
            continue
        parent = parents.get(node)
        if isinstance(parent, ast.Call) and parent.func is node:
            continue  # direct call, not a hand-off
        escaped[node.id] = nested[node.id]
    return list(escaped.values())


def analyze_escapes(cg: CallGraph) -> Dict[str, EscapeInfo]:
    """Escape facts for every function that hands off a closure.

    Returns a map whose keys include both the creator function and each
    escaping closure (both "see" the shared arrays)."""
    out: Dict[str, EscapeInfo] = {}
    for info in cg.functions.values():
        closures = escaping_closures(cg, info)
        if not closures:
            continue
        arrays = array_locals(info)
        if not arrays:
            continue
        shared: Dict[str, int] = {}
        for closure in closures:
            for name in free_names(closure.node):
                if name in arrays:
                    shared[name] = arrays[name]
        if not shared:
            continue
        entry = out.setdefault(info.qualname, EscapeInfo(func=info.qualname))
        entry.shared.update(shared)
        for closure in closures:
            entry.escaping_closures.append(closure.qualname)
            closure_entry = out.setdefault(
                closure.qualname, EscapeInfo(func=closure.qualname)
            )
            closure_entry.shared.update(shared)
    return out
