"""Minimal SARIF 2.1.0 export.

Just enough of the schema for code-scanning UIs to render analyzer
findings on a pull request: one run, one rule descriptor per RPR code,
one result per finding with a physical location.  Suppressed findings
are carried with a ``suppressions`` entry so the upload reflects the
``# repro: noqa[...]`` audit trail.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List

from ..rules import ALL_RULES, Finding

__all__ = ["to_sarif", "write_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"


def _rule_descriptor(code: str) -> Dict[str, object]:
    for rule in ALL_RULES:
        if rule.code == code:
            return {
                "id": code,
                "name": rule.name,
                "shortDescription": {"text": rule.description},
                "help": {"text": rule.hint},
            }
    return {"id": code, "name": code}


def _result(finding: Finding) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.code,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": max(1, finding.col + 1),
                    },
                }
            }
        ],
    }
    if finding.suppressed:
        result["level"] = "note"
        result["suppressions"] = [
            {
                "kind": "inSource",
                "justification": finding.justification or "",
            }
        ]
    return result


def to_sarif(
    findings: Iterable[Finding],
    suppressed: Iterable[Finding] = (),
    tool_version: str = "0",
) -> Dict[str, object]:
    all_findings: List[Finding] = list(findings) + list(suppressed)
    codes = sorted({f.code for f in all_findings})
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": "https://example.invalid/repro",
                        "version": tool_version,
                        "rules": [_rule_descriptor(c) for c in codes],
                    }
                },
                "results": [_result(f) for f in all_findings],
            }
        ],
    }


def write_sarif(
    path: str,
    findings: Iterable[Finding],
    suppressed: Iterable[Finding] = (),
    tool_version: str = "0",
) -> None:
    doc = to_sarif(findings, suppressed, tool_version)
    out = Path(path)
    if out.parent and not out.parent.exists():
        out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
