"""The project linter: run the RPR rules over a source tree.

Usage (library)::

    from repro.analysis import run_linter
    report = run_linter(strict=True)      # lints the installed repro tree
    print(report.format())
    raise SystemExit(0 if report.ok else 1)

Usage (CLI)::

    python -m repro.analysis --strict     # CI entry point
    python -m repro analyze --strict      # same, through the main CLI

The whole tree is parsed exactly once per run into a
:class:`~repro.analysis.project.ProjectIndex`; per-file rules consume
the cached :class:`ParsedModule` entries and the project-wide rules
(RPR009/RPR010 — the interprocedural lockset analysis) consume the
index itself, so adding a rule never adds a parse.

Suppression
-----------
A finding is suppressed by an inline comment anchored to the flagged
construct::

    x[lo:hi] += vals  # repro: noqa[RPR001] scheduler is the serialization point

The anchor is a *span*, not a single line: for a decorated ``def`` it
covers the decorators and the (possibly wrapped) signature, and for a
multi-line statement it covers the statement's header lines — so the
comment can sit on whichever physical line survives reformatting.
``# repro: noqa`` with no code list suppresses every rule on that
line.  In ``--strict`` mode a suppression must carry a justification
(the free text after the bracket); a bare ``noqa`` leaves the finding
active, with the missing justification called out — suppressions are
part of the concurrency-correctness argument and must say *why* the
code is safe, not just that the author wanted the warning gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .project import NoqaEntry, ParsedModule, ProjectIndex
from .rules import ALL_RULES, Finding, Rule

__all__ = ["LintReport", "run_linter", "lint_index", "lint_source", "default_root"]


def default_root() -> Path:
    """The ``repro`` package directory this module was imported from."""
    return Path(__file__).resolve().parents[1]


@dataclass
class LintReport:
    """Outcome of one linter run."""

    findings: List[Finding] = field(default_factory=list)
    """Active findings (not suppressed, or suppressed without a
    justification in strict mode)."""
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    strict: bool = False
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def by_code(self, code: str) -> List[Finding]:
        return [f for f in self.findings if f.code == code]

    def format(self) -> str:
        lines: List[str] = []
        for err in self.parse_errors:
            lines.append(f"parse error: {err}")
        for f in sorted(self.findings, key=lambda f: (f.path, f.line, f.code)):
            lines.append(f.format())
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s)"
            f" ({len(self.suppressed)} suppressed)"
        )
        return "\n".join(lines)


def _noqa_for(
    finding: Finding, noqa: Dict[int, NoqaEntry]
) -> Optional[NoqaEntry]:
    """The suppression entry covering ``finding``, if any.

    A ``noqa`` on any line of the finding's anchor span counts; the
    first matching line (top-down) wins when several apply.
    """
    for lineno in range(finding.span_start, finding.span_end + 1):
        entry = noqa.get(lineno)
        if entry is not None and (entry[0] is None or finding.code in entry[0]):
            return entry
    return None


def _triage(
    findings: Sequence[Finding],
    noqa_by_path: Dict[str, Dict[int, NoqaEntry]],
    strict: bool,
    active: List[Finding],
    suppressed: List[Finding],
) -> None:
    """Route findings to active/suppressed per the noqa maps."""
    for finding in findings:
        entry = _noqa_for(finding, noqa_by_path.get(finding.path, {}))
        if entry is not None:
            finding.justification = entry[1]
            if strict and not entry[1]:
                finding.message += (
                    "  (suppression rejected: noqa carries no justification)"
                )
                active.append(finding)
            else:
                finding.suppressed = True
                suppressed.append(finding)
        else:
            active.append(finding)


def lint_index(
    index: ProjectIndex,
    strict: bool = False,
    rules: Optional[Sequence[Rule]] = None,
    ignore_scope: bool = False,
) -> LintReport:
    """Lint a pre-parsed project index (the parse-once entry point)."""
    chosen = list(rules) if rules is not None else list(ALL_RULES)
    report = LintReport(strict=strict)
    report.parse_errors.extend(index.parse_errors)
    report.files_checked = len(index)
    noqa_by_path = {mod.relpath: mod.noqa for mod in index}

    per_file = [r for r in chosen if not r.project_wide]
    project = [r for r in chosen if r.project_wide]

    for mod in index:
        for rule in per_file:
            if not ignore_scope and not rule.applies_to(mod.relpath):
                continue
            _triage(
                rule.check_module(mod),
                noqa_by_path,
                strict,
                report.findings,
                report.suppressed,
            )
    for rule in project:
        _triage(
            rule.check_project(index),
            noqa_by_path,
            strict,
            report.findings,
            report.suppressed,
        )
    return report


def lint_source(
    source: str,
    relpath: str,
    strict: bool = False,
    rules: Optional[Sequence[Rule]] = None,
    ignore_scope: bool = False,
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one module's source; returns (active, suppressed) findings.

    ``ignore_scope`` runs every rule regardless of its file scope —
    used by the test fixtures, which concentrate violations of all
    rules in one file.  Project-wide rules see a one-module index.
    """
    module = ParsedModule.parse(source, relpath)
    index = ProjectIndex()
    index.add(module)
    report = lint_index(index, strict=strict, rules=rules, ignore_scope=ignore_scope)
    return report.findings, report.suppressed


def run_linter(
    root: Optional[Path] = None,
    strict: bool = False,
    rules: Optional[Sequence[Rule]] = None,
    ignore_scope: bool = False,
) -> LintReport:
    """Lint every ``*.py`` file under ``root`` (default: the installed
    ``repro`` package), parsing each file exactly once."""
    base = Path(root) if root is not None else default_root()
    index = ProjectIndex.from_root(base)
    return lint_index(index, strict=strict, rules=rules, ignore_scope=ignore_scope)
