"""The project linter: run the RPR rules over a source tree.

Usage (library)::

    from repro.analysis import run_linter
    report = run_linter(strict=True)      # lints the installed repro tree
    print(report.format())
    raise SystemExit(0 if report.ok else 1)

Usage (CLI)::

    python -m repro.analysis --strict     # CI entry point
    python -m repro analyze --strict      # same, through the main CLI

Suppression
-----------
A finding is suppressed by an inline comment on the flagged line::

    x[lo:hi] += vals  # repro: noqa[RPR001] scheduler is the serialization point

``# repro: noqa`` with no code list suppresses every rule on that
line.  In ``--strict`` mode a suppression must carry a justification
(the free text after the bracket); a bare ``noqa`` leaves the finding
active, with the missing justification called out — suppressions are
part of the concurrency-correctness argument and must say *why* the
code is safe, not just that the author wanted the warning gone.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .rules import ALL_RULES, Finding, Rule

__all__ = ["LintReport", "run_linter", "lint_source", "default_root"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?\s*(?P<just>.*)$"
)


def default_root() -> Path:
    """The ``repro`` package directory this module was imported from."""
    return Path(__file__).resolve().parents[1]


@dataclass
class LintReport:
    """Outcome of one linter run."""

    findings: List[Finding] = field(default_factory=list)
    """Active findings (not suppressed, or suppressed without a
    justification in strict mode)."""
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    strict: bool = False
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def by_code(self, code: str) -> List[Finding]:
        return [f for f in self.findings if f.code == code]

    def format(self) -> str:
        lines: List[str] = []
        for err in self.parse_errors:
            lines.append(f"parse error: {err}")
        for f in sorted(self.findings, key=lambda f: (f.path, f.line, f.code)):
            lines.append(f.format())
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s)"
            f" ({len(self.suppressed)} suppressed)"
        )
        return "\n".join(lines)


def _parse_noqa(source: str) -> Dict[int, Tuple[Optional[frozenset], str]]:
    """Map line number -> (codes or None for all, justification)."""
    out: Dict[int, Tuple[Optional[frozenset], str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        codes = m.group("codes")
        parsed = (
            frozenset(c.strip() for c in codes.split(",") if c.strip())
            if codes
            else None
        )
        out[lineno] = (parsed, m.group("just").strip())
    return out


def lint_source(
    source: str,
    relpath: str,
    strict: bool = False,
    rules: Optional[Sequence[Rule]] = None,
    ignore_scope: bool = False,
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one module's source; returns (active, suppressed) findings.

    ``ignore_scope`` runs every rule regardless of its file scope —
    used by the test fixtures, which concentrate violations of all
    rules in one file.
    """
    tree = ast.parse(source, filename=relpath)
    noqa = _parse_noqa(source)
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in rules if rules is not None else ALL_RULES:
        if not ignore_scope and not rule.applies_to(relpath):
            continue
        for finding in rule.check(tree, source, relpath):
            entry = noqa.get(finding.line)
            if entry is not None and (entry[0] is None or finding.code in entry[0]):
                finding.justification = entry[1]
                if strict and not entry[1]:
                    finding.message += (
                        "  (suppression rejected: noqa carries no justification)"
                    )
                    active.append(finding)
                else:
                    finding.suppressed = True
                    suppressed.append(finding)
            else:
                active.append(finding)
    return active, suppressed


def run_linter(
    root: Optional[Path] = None,
    strict: bool = False,
    rules: Optional[Sequence[Rule]] = None,
    ignore_scope: bool = False,
) -> LintReport:
    """Lint every ``*.py`` file under ``root`` (default: the installed
    ``repro`` package)."""
    base = Path(root) if root is not None else default_root()
    report = LintReport(strict=strict)
    if base.is_file():
        files = [base]
        relbase = base.parent
    else:
        files = sorted(base.rglob("*.py"))
        relbase = base
    for path in files:
        relpath = str(path.relative_to(relbase))
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:  # pragma: no cover - unreadable file
            report.parse_errors.append(f"{relpath}: {exc}")
            continue
        try:
            active, suppressed = lint_source(
                source, relpath, strict=strict, rules=rules, ignore_scope=ignore_scope
            )
        except SyntaxError as exc:
            report.parse_errors.append(f"{relpath}: {exc}")
            continue
        report.findings.extend(active)
        report.suppressed.extend(suppressed)
        report.files_checked += 1
    return report
