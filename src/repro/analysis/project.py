"""Shared parsed-module cache for the analysis layer.

Every analysis in :mod:`repro.analysis` — the per-file RPR rules, the
whole-program call graph, the interprocedural lockset/escape passes —
consumes the same parsed representation of the project.  This module
owns that representation: a :class:`ProjectIndex` parses each ``*.py``
file exactly **once per run** and hands the cached :class:`ParsedModule`
(source text, ``ast`` tree, ``noqa`` suppression map, dotted module
name) to every consumer.  Before this cache existed the linter parsed
per file and the conformance CLI re-parsed for every extra pass; now
``run_linter`` and the static analyses share one index.

The index is deliberately dumb: no import execution, no filesystem
watching — just text -> AST, plus the handful of derived maps every
pass was recomputing.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = ["NoqaEntry", "ParsedModule", "ProjectIndex", "module_name_for"]

#: line-anchored suppression comment: ``# repro: noqa[RPR001] why``
NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?\s*(?P<just>.*)$"
)

#: ``(codes or None for all, justification)``
NoqaEntry = Tuple[Optional[frozenset], str]


def module_name_for(relpath: str) -> str:
    """Dotted module name for a path relative to the linted root.

    ``core/threaded.py`` -> ``core.threaded``;
    ``kernels/__init__.py`` -> ``kernels``; a top-level
    ``__init__.py`` -> ``""`` (the package root itself).
    """
    norm = relpath.replace("\\", "/")
    if norm.endswith(".py"):
        norm = norm[: -len(".py")]
    parts = [p for p in norm.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def parse_noqa(source: str) -> Dict[int, NoqaEntry]:
    """Map line number -> (codes or None for all, justification)."""
    out: Dict[int, NoqaEntry] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = NOQA_RE.search(line)
        if not m:
            continue
        codes = m.group("codes")
        parsed = (
            frozenset(c.strip() for c in codes.split(",") if c.strip())
            if codes
            else None
        )
        out[lineno] = (parsed, m.group("just").strip())
    return out


@dataclass
class ParsedModule:
    """One parsed source file, with everything the passes derive from it."""

    relpath: str
    source: str
    tree: ast.Module
    module: str
    """Dotted module name relative to the linted root."""
    noqa: Dict[int, NoqaEntry] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str, relpath: str) -> "ParsedModule":
        tree = ast.parse(source, filename=relpath)
        return cls(
            relpath=relpath,
            source=source,
            tree=tree,
            module=module_name_for(relpath),
            noqa=parse_noqa(source),
        )


@dataclass
class ProjectIndex:
    """All parsed modules of one analysis run (the parse-once cache)."""

    modules: Dict[str, ParsedModule] = field(default_factory=dict)
    """relpath -> parsed module."""
    by_module: Dict[str, ParsedModule] = field(default_factory=dict)
    """dotted module name -> parsed module."""
    parse_errors: List[str] = field(default_factory=list)

    def add(self, module: ParsedModule) -> None:
        self.modules[module.relpath] = module
        self.by_module[module.module] = module

    def __iter__(self) -> Iterator[ParsedModule]:
        return iter(self.modules.values())

    def __len__(self) -> int:
        return len(self.modules)

    def get(self, relpath: str) -> Optional[ParsedModule]:
        return self.modules.get(relpath)

    def resolve_module(self, dotted: str) -> Optional[ParsedModule]:
        return self.by_module.get(dotted)

    @classmethod
    def from_root(cls, root: Path) -> "ProjectIndex":
        """Parse every ``*.py`` under ``root`` (or the single file) once."""
        index = cls()
        if root.is_file():
            files = [root]
            relbase = root.parent
        else:
            files = sorted(root.rglob("*.py"))
            relbase = root
        for path in files:
            relpath = str(path.relative_to(relbase))
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as exc:  # pragma: no cover - unreadable file
                index.parse_errors.append(f"{relpath}: {exc}")
                continue
            try:
                index.add(ParsedModule.parse(source, relpath))
            except SyntaxError as exc:
                index.parse_errors.append(f"{relpath}: {exc}")
        return index

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "ProjectIndex":
        """Build an index from in-memory ``{relpath: source}`` pairs
        (test fixtures, single-module lint runs)."""
        index = cls()
        for relpath, source in sources.items():
            index.add(ParsedModule.parse(source, relpath))
        return index
