"""CI entry point: ``python -m repro.analysis [--strict] [PATH ...]``.

Exits 0 when every rule is clean (or explicitly suppressed); exits 1
on any active finding.  ``--strict`` additionally rejects suppressions
that carry no justification text.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .linter import default_root, run_linter


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Project linter: concurrency-correctness rules RPR001-RPR005",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on any active finding and require justified suppressions",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print nothing when clean"
    )
    args = parser.parse_args(argv)

    roots = args.paths or [default_root()]
    ok = True
    for root in roots:
        report = run_linter(root=root, strict=args.strict)
        ok = ok and report.ok
        if not report.ok or not args.quiet:
            print(report.format())
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
