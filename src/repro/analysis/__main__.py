"""CI entry point: ``python -m repro.analysis [--strict] [PATH ...]``.

Exits 0 when every rule is clean (or explicitly suppressed / pinned in
the baseline); exits 1 on any new active finding.  ``--strict``
additionally rejects suppressions that carry no justification text.

The whole-program passes (RPR009/RPR010 — call graph, escape and
lockset analysis) run by default; ``--no-static`` restricts the run to
the per-file rules.  ``--baseline FILE`` turns the gate into a
*ratchet*: findings fingerprinted in the baseline are reported but do
not fail, anything new does, and ``--update-baseline`` rewrites the
file (a deliberate, reviewable act).  ``--sarif FILE`` exports the run
for code-scanning UIs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .linter import LintReport, default_root, run_linter
from .rules import ALL_RULES, Finding


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "Project linter: concurrency-correctness rules RPR001-RPR010 "
            "(per-file discipline checks plus whole-program lockset analysis)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on any active finding and require justified suppressions",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print nothing when clean"
    )
    parser.add_argument(
        "--static",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "run the whole-program passes (RPR009/RPR010); --no-static "
            "keeps only the per-file rules"
        ),
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "findings ratchet: fingerprints in FILE are pinned (reported, "
            "not failing); new findings fail"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline FILE from the current findings and exit 0",
    )
    parser.add_argument(
        "--sarif",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the findings as a SARIF 2.1.0 log to FILE",
    )
    args = parser.parse_args(argv)

    if args.update_baseline and args.baseline is None:
        parser.error("--update-baseline requires --baseline FILE")

    rules = ALL_RULES if args.static else [r for r in ALL_RULES if not r.project_wide]

    roots = args.paths or [default_root()]
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    parse_errors: List[str] = []
    files_checked = 0
    for root in roots:
        report = run_linter(root=root, strict=args.strict, rules=rules)
        findings.extend(report.findings)
        suppressed.extend(report.suppressed)
        parse_errors.extend(report.parse_errors)
        files_checked += report.files_checked

    if args.sarif is not None:
        from .static.sarif import write_sarif

        write_sarif(str(args.sarif), findings, suppressed)

    if args.update_baseline:
        from .static.baseline import Baseline, baseline_details

        baseline = Baseline.from_findings(findings)
        baseline.save(args.baseline, baseline_details(findings))
        if not args.quiet:
            print(
                f"baseline written: {args.baseline} "
                f"({len(baseline.entries)} fingerprint(s), "
                f"{len(findings)} finding(s))"
            )
        return 0

    pinned: List[Finding] = []
    if args.baseline is not None:
        from .static.baseline import Baseline, apply_baseline

        baseline = Baseline.load(args.baseline)
        findings, pinned = apply_baseline(findings, baseline)

    merged = LintReport(
        findings=findings,
        suppressed=suppressed,
        files_checked=files_checked,
        strict=args.strict,
        parse_errors=parse_errors,
    )
    ok = merged.ok
    if not ok or not args.quiet:
        print(merged.format())
        if pinned:
            print(f"{len(pinned)} baselined finding(s) not counted against the gate")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
