"""Rule base classes and the RPR rule registry.

Each rule is an AST pass with a stable code (``RPR001`` ...), a
one-line description, and a fixit hint.  A rule may restrict itself to
specific files (``scope`` — path suffixes relative to the linted
root); rules with an empty scope apply everywhere.  Findings on a line
carrying ``# repro: noqa[RPRxxx] <justification>`` are suppressed by
the linter (in ``--strict`` mode only when the justification is
non-empty — a bare noqa is a finding of its own kind).
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..project import ParsedModule, ProjectIndex

__all__ = ["Finding", "Rule", "ALL_RULES", "rule_by_code"]


@dataclass
class Finding:
    """One linter finding, pointing at a source line."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    hint: str = ""
    suppressed: bool = False
    justification: str = ""
    start_line: int = 0
    """First line of the flagged construct (a decorator, when the node
    is a decorated def).  0 means "same as ``line``"."""
    end_line: int = 0
    """Last line of the flagged statement's *header* — a ``noqa`` on
    any line in ``[start, end_line]`` suppresses the finding, which is
    what makes suppression work on decorated defs and statements whose
    header wraps across lines.  0 means "same as ``line``"."""

    @property
    def span_start(self) -> int:
        return self.start_line or self.line

    @property
    def span_end(self) -> int:
        return max(self.end_line or self.line, self.line)

    def format(self) -> str:
        loc = f"{self.path}:{self.line}:{self.col + 1}"
        text = f"{loc}: {self.code} {self.message}"
        if self.hint:
            text += f"  [fixit: {self.hint}]"
        return text


def _header_span(node: ast.AST) -> Tuple[int, int]:
    """``(start, end)`` lines of a node's suppression span.

    For compound statements the span is the *header* only (``def``/
    ``for``/``with`` line(s) up to — not including — the first body
    statement); for decorated defs it starts at the first decorator.
    A ``noqa`` anywhere in the span anchors to the finding.
    """
    line = getattr(node, "lineno", 1)
    start = line
    decorators = getattr(node, "decorator_list", None)
    if decorators:
        start = min([line] + [getattr(d, "lineno", line) for d in decorators])
    end = getattr(node, "end_lineno", None) or line
    body = getattr(node, "body", None)
    if isinstance(body, list) and body and hasattr(body[0], "lineno"):
        end = min(end, body[0].lineno - 1)
    return start, max(line, end)


class Rule(ABC):
    """One static-analysis rule (an AST pass over a single module)."""

    code: str = "RPR000"
    name: str = "abstract"
    description: str = ""
    hint: str = ""
    #: path suffixes this rule applies to; empty = every file
    scope: Tuple[str, ...] = ()
    #: True for whole-program rules — the linter calls
    #: :meth:`check_project` once per run instead of
    #: :meth:`check_module` per file
    project_wide: bool = False

    def applies_to(self, relpath: str) -> bool:
        if not self.scope:
            return True
        norm = relpath.replace("\\", "/")
        return any(norm.endswith(suffix) for suffix in self.scope)

    @abstractmethod
    def check(self, tree: ast.AST, source: str, relpath: str) -> List[Finding]:
        """Return the findings for one parsed module."""

    def check_module(self, module: "ParsedModule") -> List[Finding]:
        """Check one pre-parsed module (the shared-cache entry point —
        the tree is parsed once per run, not once per rule)."""
        return self.check(module.tree, module.source, module.relpath)

    def check_project(self, index: "ProjectIndex") -> List[Finding]:
        """Whole-program entry point for ``project_wide`` rules."""
        raise NotImplementedError(f"{self.code} is not a project-wide rule")

    def finding(self, relpath: str, node: ast.AST, message: str) -> Finding:
        start, end = _header_span(node)
        return Finding(
            code=self.code,
            message=message,
            path=relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            hint=self.hint,
            start_line=start,
            end_line=end,
        )


def _collect_rules() -> List[Rule]:
    # Imported here (not at module top) so the registry and the rule
    # modules cannot form an import cycle.
    from .bounded_queues import BoundedQueueRule
    from .fork_safety import ForkSafetyRule
    from .hot_alloc import HotLoopAllocationRule
    from .hot_path import HotPathEmissionRule
    from .interproc_lock_order import InterprocLockOrderRule
    from .live_callbacks import LiveCallbackBlockingRule
    from .lock_order import LockOrderRule
    from .membership import MembershipTransitionRule
    from .result_contract import ResultContractRule
    from .rng import SeededRngRule
    from .shared_writes import SharedWriteDisciplineRule
    from .static_race import StaticRaceRule
    from .timing import WallClockRule

    classes: List[Type[Rule]] = [
        SharedWriteDisciplineRule,
        LockOrderRule,
        SeededRngRule,
        WallClockRule,
        ResultContractRule,
        HotPathEmissionRule,
        HotLoopAllocationRule,
        MembershipTransitionRule,
        StaticRaceRule,
        InterprocLockOrderRule,
        LiveCallbackBlockingRule,
        ForkSafetyRule,
        BoundedQueueRule,
    ]
    rules = [cls() for cls in classes]
    codes = [r.code for r in rules]
    if len(set(codes)) != len(codes):  # pragma: no cover - registry bug
        raise RuntimeError(f"duplicate rule codes: {codes}")
    return rules


ALL_RULES: List[Rule] = _collect_rules()


def rule_by_code(code: str) -> Rule:
    """Look up a registered rule by its ``RPRxxx`` code."""
    for rule in ALL_RULES:
        if rule.code == code:
            return rule
    raise KeyError(f"unknown rule code {code!r}; known: {[r.code for r in ALL_RULES]}")
