"""Rule base classes and the RPR rule registry.

Each rule is an AST pass with a stable code (``RPR001`` ...), a
one-line description, and a fixit hint.  A rule may restrict itself to
specific files (``scope`` — path suffixes relative to the linted
root); rules with an empty scope apply everywhere.  Findings on a line
carrying ``# repro: noqa[RPRxxx] <justification>`` are suppressed by
the linter (in ``--strict`` mode only when the justification is
non-empty — a bare noqa is a finding of its own kind).
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Tuple, Type

__all__ = ["Finding", "Rule", "ALL_RULES", "rule_by_code"]


@dataclass
class Finding:
    """One linter finding, pointing at a source line."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    hint: str = ""
    suppressed: bool = False
    justification: str = ""

    def format(self) -> str:
        loc = f"{self.path}:{self.line}:{self.col + 1}"
        text = f"{loc}: {self.code} {self.message}"
        if self.hint:
            text += f"  [fixit: {self.hint}]"
        return text


class Rule(ABC):
    """One static-analysis rule (an AST pass over a single module)."""

    code: str = "RPR000"
    name: str = "abstract"
    description: str = ""
    hint: str = ""
    #: path suffixes this rule applies to; empty = every file
    scope: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if not self.scope:
            return True
        norm = relpath.replace("\\", "/")
        return any(norm.endswith(suffix) for suffix in self.scope)

    @abstractmethod
    def check(self, tree: ast.AST, source: str, relpath: str) -> List[Finding]:
        """Return the findings for one parsed module."""

    def finding(self, relpath: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=self.code,
            message=message,
            path=relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            hint=self.hint,
        )


def _collect_rules() -> List[Rule]:
    # Imported here (not at module top) so the registry and the rule
    # modules cannot form an import cycle.
    from .hot_alloc import HotLoopAllocationRule
    from .hot_path import HotPathEmissionRule
    from .lock_order import LockOrderRule
    from .membership import MembershipTransitionRule
    from .result_contract import ResultContractRule
    from .rng import SeededRngRule
    from .shared_writes import SharedWriteDisciplineRule
    from .timing import WallClockRule

    classes: List[Type[Rule]] = [
        SharedWriteDisciplineRule,
        LockOrderRule,
        SeededRngRule,
        WallClockRule,
        ResultContractRule,
        HotPathEmissionRule,
        HotLoopAllocationRule,
        MembershipTransitionRule,
    ]
    rules = [cls() for cls in classes]
    codes = [r.code for r in rules]
    if len(set(codes)) != len(codes):  # pragma: no cover - registry bug
        raise RuntimeError(f"duplicate rule codes: {codes}")
    return rules


ALL_RULES: List[Rule] = _collect_rules()


def rule_by_code(code: str) -> Rule:
    """Look up a registered rule by its ``RPRxxx`` code."""
    for rule in ALL_RULES:
        if rule.code == code:
            return rule
    raise KeyError(f"unknown rule code {code!r}; known: {[r.code for r in ALL_RULES]}")
