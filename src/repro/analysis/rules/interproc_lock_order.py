"""RPR010 — interprocedural lock-order violation.

RPR002 checks acquisition order *within* one function; this rule
follows must-held locksets through the call graph and flags

- **deadlock cycles**: two code paths that acquire the same pair of
  locks in opposite orders, even when each path takes one lock in a
  caller and the other in a callee;
- **cross-function stripe breaks**: acquiring a lock from a striped
  collection (``self._locks[s]``) while a *caller* already holds a
  stripe of the same collection — the ascending-sweep argument that
  makes :class:`~repro.core.writes.AtomicWrite` deadlock-free cannot
  be checked across a call boundary, so the pattern is flagged.

Project-wide; the single-module :meth:`check` fallback lets fixture
snippets be linted in isolation.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, List

from . import Finding, Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..project import ProjectIndex


class InterprocLockOrderRule(Rule):
    code = "RPR010"
    name = "interproc-lock-order"
    description = (
        "locks acquired in conflicting order across function boundaries "
        "(deadlock cycle or same-collection stripe held by a caller)"
    )
    hint = (
        "establish one global acquisition order (e.g. ascending stripe "
        "index) and take every lock at a single call depth"
    )
    project_wide = True

    def check_project(self, index: "ProjectIndex") -> List[Finding]:
        from ..static import analyze_project

        _cg, _escapes, report = analyze_project(index)
        findings: List[Finding] = []
        for site in report.order_violations:
            node = site.node
            anchor = node if isinstance(node, ast.AST) else getattr(node, "node", None)
            if isinstance(anchor, ast.AST):
                f = self.finding(site.relpath, anchor, site.message)
                f.line = site.lineno or f.line
            else:  # pragma: no cover - defensive
                f = Finding(
                    code=self.code,
                    message=site.message,
                    path=site.relpath,
                    line=site.lineno,
                    hint=self.hint,
                )
            findings.append(f)
        return findings

    def check(self, tree: ast.AST, source: str, relpath: str) -> List[Finding]:
        from ..project import ProjectIndex

        index = ProjectIndex.from_sources({relpath: source})
        return self.check_project(index)
