"""RPR003 — seeded ``Generator`` randomness only.

Reproducibility of the asynchronous experiments (the paper averages 20
seeded runs; the engine replays exact interleavings) requires every
random decision to come from an explicitly seeded
``numpy.random.Generator``.  Two anti-patterns break that:

- the legacy module-level RNG (``np.random.rand``, ``np.random.seed``,
  ``np.random.normal``, ...) — global, shared, order-dependent state
  that any import can perturb;
- ``np.random.default_rng()`` with no seed — a fresh OS-entropy stream
  per call, unreproducible by construction.

Seeded construction (``default_rng(seed)``, ``SeedSequence`` /
``spawn`` for independent streams, explicit ``Generator`` /
``BitGenerator`` classes) stays allowed.
"""

from __future__ import annotations

import ast
from typing import List, Set

from . import Finding, Rule

__all__ = ["SeededRngRule"]

#: attributes of numpy.random that are fine to reference
ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


class SeededRngRule(Rule):
    code = "RPR003"
    name = "seeded-generator-rng"
    description = (
        "randomness must come from seeded numpy Generators; the legacy "
        "module-level RNG and unseeded default_rng() are forbidden"
    )
    hint = (
        "use np.random.default_rng(seed) (and SeedSequence.spawn for "
        "independent streams) instead"
    )
    scope = ()

    def check(self, tree: ast.AST, source: str, relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        numpy_aliases: Set[str] = set()
        random_aliases: Set[str] = set()  # names bound to numpy.random
        default_rng_aliases: Set[str] = set()

        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        random_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            random_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name == "default_rng":
                            default_rng_aliases.add(alias.asname or "default_rng")
                        elif alias.name not in ALLOWED:
                            findings.append(
                                self.finding(
                                    relpath,
                                    node,
                                    f"import of legacy module-level RNG "
                                    f"'numpy.random.{alias.name}'",
                                )
                            )

        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                base = node.value
                # np.random.<attr> / numpy.random.<attr>
                if (
                    isinstance(base, ast.Attribute)
                    and base.attr == "random"
                    and isinstance(base.value, ast.Name)
                    and base.value.id in numpy_aliases
                ) or (isinstance(base, ast.Name) and base.id in random_aliases):
                    if node.attr not in ALLOWED:
                        findings.append(
                            self.finding(
                                relpath,
                                node,
                                f"legacy module-level RNG "
                                f"'np.random.{node.attr}' (global, "
                                "order-dependent state)",
                            )
                        )
            if isinstance(node, ast.Call):
                fn = node.func
                is_default_rng = (
                    isinstance(fn, ast.Attribute) and fn.attr == "default_rng"
                ) or (isinstance(fn, ast.Name) and fn.id in default_rng_aliases)
                if is_default_rng and not node.args and not node.keywords:
                    findings.append(
                        self.finding(
                            relpath,
                            node,
                            "unseeded default_rng() — draws OS entropy, "
                            "irreproducible by construction",
                        )
                    )
        return findings
