"""RPR007 — no per-iteration array allocation in executor hot loops.

The kernel layer (:mod:`repro.kernels`) exists so the correction
loops run on preallocated plans and per-thread scratch buffers: a
``np.zeros(n)`` (or the ``np.repeat(np.arange(...))`` index rebuild
the pre-kernel SpMV paid on *every call*) inside an executor loop
allocates and zero-fills O(n) memory per correction, which at
benchmark sizes costs more than the arithmetic it feeds.  This rule
flags the allocating constructors — ``np.zeros`` / ``np.empty`` /
``np.ones`` / ``np.arange`` / ``np.repeat`` / ``np.zeros_like`` /
``np.empty_like`` — and ``.tocsr()`` / ``.tocsc()`` format
conversions inside any ``for``/``while`` loop of the three executors.
Hoist the buffer out of the loop, take one from
:func:`repro.kernels.scratch`, or route the operation through a
kernel (which owns its temporaries).  Allocations that are genuinely
per-iteration (e.g. an array that outlives the iteration as part of a
result or message payload) carry a justified
``# repro: noqa[RPR007] <why>``.
"""

from __future__ import annotations

import ast
from typing import List, Set

from . import Finding, Rule

__all__ = ["HotLoopAllocationRule"]

#: numpy constructors that allocate (and for zeros/ones, fill) per call.
_ALLOC_FUNCS = {
    "zeros",
    "empty",
    "ones",
    "arange",
    "repeat",
    "zeros_like",
    "empty_like",
}

#: sparse format conversions — a full copy of the matrix per call.
_CONVERT_METHODS = {"tocsr", "tocsc"}


class HotLoopAllocationRule(Rule):
    code = "RPR007"
    name = "hot-loop-allocation"
    description = (
        "no per-iteration numpy allocation (np.zeros/np.empty/"
        "np.arange/np.repeat/...) or sparse .tocsr() conversion "
        "inside executor correction loops"
    )
    hint = (
        "hoist the buffer above the loop, borrow repro.kernels."
        "scratch(), or route the operation through a repro.kernels "
        "kernel"
    )
    scope = (
        "core/engine.py",
        "core/threaded.py",
        "distributed/simulator.py",
    )

    def check(self, tree: ast.AST, source: str, relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        np_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        np_aliases.add(alias.asname or "numpy")
        if not np_aliases:
            np_aliases.add("np")  # conventional fallback

        def allocation(call: ast.Call) -> str:
            fn = call.func
            if not isinstance(fn, ast.Attribute):
                return ""
            base = fn.value
            if fn.attr in _ALLOC_FUNCS:
                if isinstance(base, ast.Name) and base.id in np_aliases:
                    return f"{base.id}.{fn.attr}()"
            if fn.attr in _CONVERT_METHODS and not call.args and not call.keywords:
                return f".{fn.attr}()"
            return ""

        seen: Set[int] = set()  # nested loops: report each call once
        for loop in ast.walk(tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call) or id(node) in seen:
                    continue
                what = allocation(node)
                if what:
                    seen.add(id(node))
                    findings.append(
                        self.finding(
                            relpath,
                            node,
                            f"{what} inside an executor loop — O(n) "
                            "allocation per iteration; preallocate or "
                            "use repro.kernels scratch/plan buffers",
                        )
                    )
        return findings
