"""RPR012 — the procs executor must stay spawn/fork-safe.

``repro.core.parallel`` workers are *spawned*: each child re-imports
the module from scratch, so any module-level mutable state (a dict of
locks, a cached array, a ``threading.Lock``) silently forks into
per-process copies that look shared but aren't — the classic
fork-safety trap.  The module's contract is therefore:

- **no module-level mutable containers or synchronization objects** —
  module constants must be immutable (tuples, frozensets, numbers,
  strings).  Anything per-run travels through ``Process`` args or the
  shared segment; anything per-process is built inside the worker.
- **shared views only through** :class:`~repro.core.parallel.SharedVectors`
  — ``np.frombuffer`` over the segment buffer is how a view escapes
  the teardown discipline (close-before-unlink, unlink-exactly-once),
  so the helper is the single place allowed to construct one.

This rule flags, in ``core/parallel.py``: module-level assignments of
mutable literals (list/dict/set displays and comprehensions), calls to
mutable constructors (``list``/``dict``/``set``/``deque``/
``defaultdict``/``Counter``/``OrderedDict``), numpy array constructors,
``threading``/``multiprocessing`` primitives (``Lock``/``RLock``/
``Event``/``Condition``/``Semaphore``/``Queue``) — and any
``np.frombuffer`` call outside the ``SharedVectors`` class body.
"""

from __future__ import annotations

import ast
from typing import List, Set

from . import Finding, Rule

__all__ = ["ForkSafetyRule"]

#: constructor names whose module-level call creates mutable state.
_MUTABLE_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "deque",
    "defaultdict",
    "OrderedDict",
    "Counter",
}

#: synchronization primitives that must never live at module level —
#: a spawn child rebuilding the module gets a fresh, unrelated object.
_SYNC_CONSTRUCTORS = {
    "Lock",
    "RLock",
    "Event",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "Queue",
    "SimpleQueue",
}

#: numpy allocators — a module-level array is per-process storage
#: masquerading as shared state.
_NUMPY_ALLOCATORS = {
    "array",
    "zeros",
    "ones",
    "empty",
    "full",
    "frombuffer",
    "arange",
}

_MUTABLE_DISPLAYS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _numpy_aliases(tree: ast.AST) -> Set[str]:
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


class ForkSafetyRule(Rule):
    code = "RPR012"
    name = "procs-fork-safety"
    description = (
        "no fork-unsafe module-level state in the procs executor; "
        "shared-memory views only via the SharedVectors helper"
    )
    hint = (
        "ship per-run state through Process args or the shared segment, "
        "build per-process state inside the worker, and construct "
        "np.frombuffer views only in SharedVectors"
    )
    scope = ("core/parallel.py",)

    def check(self, tree: ast.AST, source: str, relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        np_names = _numpy_aliases(tree)

        def mutable_value(value: ast.AST) -> str:
            """Why a module-level assigned value is fork-unsafe ('' = safe)."""
            if isinstance(value, _MUTABLE_DISPLAYS):
                return f"a {type(value).__name__.lower()} literal"
            if isinstance(value, ast.Call):
                fn = value.func
                name = (
                    fn.id
                    if isinstance(fn, ast.Name)
                    else fn.attr if isinstance(fn, ast.Attribute) else ""
                )
                if name in _MUTABLE_CONSTRUCTORS:
                    return f"{name}()"
                if name in _SYNC_CONSTRUCTORS:
                    return f"a {name}() synchronization primitive"
                if (
                    isinstance(fn, ast.Attribute)
                    and isinstance(fn.value, ast.Name)
                    and fn.value.id in np_names
                    and fn.attr in _NUMPY_ALLOCATORS
                ):
                    return f"{fn.value.id}.{fn.attr}()"
            return ""

        # -- module-level mutable state --------------------------------
        if not isinstance(tree, ast.Module):  # pragma: no cover - guard
            return findings
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            plain = [t.id for t in targets if isinstance(t, ast.Name)]
            if plain and all(n.startswith("__") and n.endswith("__") for n in plain):
                continue  # __all__ and friends: module metadata, never shared
            why = mutable_value(value)
            if not why:
                continue
            names = ", ".join(plain) or "<target>"
            findings.append(
                self.finding(
                    relpath,
                    stmt,
                    f"module-level mutable state '{names}' ({why}) — "
                    "spawn children re-import the module and get a "
                    "private copy that only looks shared",
                )
            )

        # -- np.frombuffer outside SharedVectors -----------------------
        inside: Set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == "SharedVectors":
                for sub in ast.walk(node):
                    inside.add(id(sub))
        for node in ast.walk(tree):
            if id(node) in inside or not isinstance(node, ast.Call):
                continue
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr == "frombuffer"
                and isinstance(fn.value, ast.Name)
                and fn.value.id in np_names
            ):
                findings.append(
                    self.finding(
                        relpath,
                        node,
                        "np.frombuffer outside SharedVectors — raw views "
                        "over the shared segment escape the "
                        "close-before-unlink teardown discipline",
                    )
                )
        return findings
