"""RPR002 — striped-lock acquisition order.

:class:`repro.core.writes.AtomicWrite` emulates element-granular
atomics with one lock per stripe.  Deadlock freedom rests on a global
acquisition order: a thread holds at most one stripe lock at a time,
and when it sweeps several stripes it acquires them in ascending
stripe index.  Two patterns break that invariant:

- **nested acquisition** — taking stripe ``j``'s lock while already
  holding stripe ``i``'s (two sweeping threads meeting in opposite
  positions deadlock);
- **descending sweeps** — iterating the stripes via ``reversed(...)``
  or ``sorted(..., reverse=True)`` (deadlocks against an ascending
  sweep the moment a nested acquisition slips in, and breaks the
  epoch-log ordering the race checker relies on).

The rule inspects every ``with`` statement whose context manager is a
subscript into a lock collection (an attribute or name containing
``locks``) and flags both patterns.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from . import Finding, Rule

__all__ = ["LockOrderRule"]


def _lock_container(node: ast.expr) -> Optional[str]:
    """Dump of the container expression when ``node`` subscripts a lock
    collection (``self._locks[s]``, ``locks[i]`` ...), else None."""
    if not isinstance(node, ast.Subscript):
        return None
    value = node.value
    if isinstance(value, ast.Attribute) and "locks" in value.attr:
        return ast.dump(value)
    if isinstance(value, ast.Name) and "locks" in value.id:
        return ast.dump(value)
    return None


def _is_descending_iter(node: ast.expr) -> bool:
    """True for ``reversed(...)`` / ``sorted(..., reverse=True)`` /
    ``range(..., step<0)`` iterators."""
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    if isinstance(fn, ast.Name):
        if fn.id == "reversed":
            return True
        if fn.id == "sorted":
            for kw in node.keywords:
                if (
                    kw.arg == "reverse"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
        if fn.id == "range" and len(node.args) == 3:
            step = node.args[2]
            if (
                isinstance(step, ast.UnaryOp)
                and isinstance(step.op, ast.USub)
                or (
                    isinstance(step, ast.Constant)
                    and isinstance(step.value, (int, float))
                    and step.value < 0
                )
            ):
                return True
    return False


class LockOrderRule(Rule):
    code = "RPR002"
    name = "stripe-lock-order"
    description = (
        "striped locks must be acquired one at a time, in ascending "
        "stripe order (deadlock freedom of AtomicWrite)"
    )
    hint = (
        "release each stripe lock before taking the next, and sweep "
        "stripes in ascending index order"
    )
    # Applies everywhere: anything that grows a _locks collection
    # (writes.py today, any future policy) is in scope.
    scope = ()

    def check(self, tree: ast.AST, source: str, relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        self._walk(tree, [], None, findings, relpath)
        return findings

    def _walk(
        self,
        node: ast.AST,
        held: List[str],
        descending: Optional[ast.For],
        findings: List[Finding],
        relpath: str,
    ) -> None:
        if isinstance(node, ast.With):
            acquired: List[str] = []
            for item in node.items:
                container = _lock_container(item.context_expr)
                if container is None:
                    continue
                if container in held:
                    findings.append(
                        self.finding(
                            relpath,
                            node,
                            "nested acquisition of two stripe locks from the "
                            "same collection (deadlock risk)",
                        )
                    )
                if descending is not None:
                    findings.append(
                        self.finding(
                            relpath,
                            node,
                            "stripe locks acquired while iterating stripes in "
                            "descending order",
                        )
                    )
                acquired.append(container)
            for child in ast.iter_child_nodes(node):
                self._walk(child, held + acquired, descending, findings, relpath)
            return
        if isinstance(node, ast.For) and _is_descending_iter(node.iter):
            for child in ast.iter_child_nodes(node):
                self._walk(child, held, node, findings, relpath)
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child, held, descending, findings, relpath)
