"""RPR011 — live snapshot/alert callbacks must not block.

The live telemetry layer (:mod:`repro.observe.live`) runs its anomaly
detectors and ``on_*`` callbacks on the collector thread, between ring
-buffer tail reads.  A blocking call there — ``time.sleep``, file or
socket I/O, a lock ``acquire`` — stretches the collection cadence,
lets per-worker rings overwrite unseen events (``dropped`` climbs),
and in the worst case deadlocks against an executor holding the same
lock.  Detectors are pure functions over a residual window; anything
that needs I/O belongs in the designated sinks (:class:`SnapshotWriter`
flushes on its own schedule, the metrics server owns its sockets), not
in ``update``/``_check`` or an ``on_*`` handler.

This rule flags, inside any function named ``on_*``/``_on_*`` and
inside the ``update``/``_check``/``_observe`` methods of ``*Detector``
classes: ``time.sleep``/``sleep`` calls, ``open()``, blocking socket
methods (``connect``/``accept``/``recv``/``recvfrom``/``send``/
``sendall``), lock ``.acquire()``, and file-like ``.write()``/
``.flush()``/``.read()``/``.readline()`` calls.
"""

from __future__ import annotations

import ast
from typing import List, Set

from . import Finding, Rule

__all__ = ["LiveCallbackBlockingRule"]

#: method names whose call means potentially-blocking I/O or lock wait.
_BLOCKING_METHODS = {
    "acquire",
    "connect",
    "accept",
    "recv",
    "recvfrom",
    "send",
    "sendall",
    "write",
    "flush",
    "read",
    "readline",
}


def _callback_defs(tree: ast.AST) -> List[ast.FunctionDef]:
    """The defs this rule audits: ``on_*`` functions anywhere, plus
    ``update``/``_check``/``_observe`` methods of ``*Detector`` classes."""
    out: List[ast.FunctionDef] = []
    detector_methods = {"update", "_check", "_observe"}
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            if node.name.startswith("on_") or node.name.startswith("_on_"):
                out.append(node)
        elif isinstance(node, ast.ClassDef) and node.name.endswith("Detector"):
            for item in node.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name in detector_methods
                ):
                    out.append(item)
    return out


class LiveCallbackBlockingRule(Rule):
    code = "RPR011"
    name = "live-callback-blocking"
    description = (
        "no blocking calls (sleep, file/socket I/O, lock acquire) "
        "inside live snapshot/alert callbacks or detector updates"
    )
    hint = (
        "keep detectors pure; route I/O through SnapshotWriter / "
        "MetricsServer, which own their own threads and flush schedule"
    )
    scope = (
        "observe/live.py",
        "observe/alerts.py",
        "observe/profiler.py",
    )

    def check(self, tree: ast.AST, source: str, relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        time_aliases: Set[str] = set()
        bare_sleep_fns: Set[str] = set()  # `from time import sleep [as s]`

        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        bare_sleep_fns.add(alias.asname or "sleep")

        def blocking(call: ast.Call) -> str:
            fn = call.func
            if isinstance(fn, ast.Name):
                if fn.id == "open":
                    return "open()"
                if fn.id in bare_sleep_fns:
                    return f"{fn.id}()"
            if isinstance(fn, ast.Attribute):
                if (
                    fn.attr == "sleep"
                    and isinstance(fn.value, ast.Name)
                    and fn.value.id in time_aliases
                ):
                    return f"{fn.value.id}.sleep()"
                if fn.attr in _BLOCKING_METHODS:
                    return f".{fn.attr}()"
            return ""

        seen: Set[int] = set()  # nested defs: report each call once
        for cb in _callback_defs(tree):
            for node in ast.walk(cb):
                if not isinstance(node, ast.Call) or id(node) in seen:
                    continue
                what = blocking(node)
                if what:
                    seen.add(id(node))
                    findings.append(
                        self.finding(
                            relpath,
                            node,
                            f"{what} inside live callback "
                            f"'{cb.name}' — blocking work on the "
                            "collector thread stalls the snapshot "
                            "cadence and can drop ring-buffer events",
                        )
                    )
        return findings
