"""RPR009 — statically detected data race on a shared array.

Supersedes the name-list heuristic of RPR001: "shared" is *computed*
by the escape analysis (arrays flowing into handed-off worker
closures, then propagated through call-site argument bindings), and a
raw write is only flagged when the interprocedural lockset analysis
proves the empty must-hold set — a write under ``with lock:`` in the
function itself **or in any caller on every path** is fine, as is a
write routed through a :class:`~repro.core.writes.WritePolicy`.

Project-wide: the linter calls :meth:`check_project` once per run with
the shared parsed-module index; :meth:`check` (single module) exists
so fixture snippets can be linted in isolation.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, List

from . import Finding, Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..project import ProjectIndex


class StaticRaceRule(Rule):
    code = "RPR009"
    name = "static-race"
    description = (
        "raw write to a shared array reachable from a worker closure "
        "with a provably empty lockset and no covering write policy"
    )
    hint = (
        "route the write through make_write_policy(...) (policy.add / "
        "policy.assign_slice) or hold a lock on every path to it"
    )
    project_wide = True

    def check_project(self, index: "ProjectIndex") -> List[Finding]:
        from ..static import analyze_project

        _cg, _escapes, report = analyze_project(index)
        findings: List[Finding] = []
        for site in report.races:
            f = self.finding(site.relpath, site.node, site.message)
            findings.append(f)
        return findings

    def check(self, tree: ast.AST, source: str, relpath: str) -> List[Finding]:
        # Single-module fallback (fixture snippets, ad-hoc files): run
        # the whole-program analysis over a one-module index.
        from ..project import ProjectIndex

        index = ProjectIndex.from_sources({relpath: source})
        return self.check_project(index)
