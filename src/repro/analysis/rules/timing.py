"""RPR004 — monotonic clocks in solve kernels.

``time.time()`` is wall-clock time: it jumps under NTP slew and DST,
and its resolution is platform-dependent.  Every duration the repo
measures (worker heartbeats, watchdog timeouts, residual-vs-time
samples, Table-I timings) must come from the monotonic
high-resolution ``time.perf_counter()``; a single ``time.time()``
interval in a solve path can go negative under clock adjustment and
break the supervisor logic built on it.
"""

from __future__ import annotations

import ast
from typing import List, Set

from . import Finding, Rule

__all__ = ["WallClockRule"]


class WallClockRule(Rule):
    code = "RPR004"
    name = "monotonic-clock"
    description = (
        "durations must be measured with time.perf_counter(); "
        "time.time() is not monotonic"
    )
    hint = "replace time.time() with time.perf_counter()"
    scope = ()

    def check(self, tree: ast.AST, source: str, relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        time_aliases: Set[str] = set()
        bare_time_fns: Set[str] = set()  # `from time import time [as t]`

        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        bare_time_fns.add(alias.asname or "time")
                        findings.append(
                            self.finding(
                                relpath,
                                node,
                                "import of wall-clock time.time "
                                "(non-monotonic)",
                            )
                        )

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr == "time"
                and isinstance(fn.value, ast.Name)
                and fn.value.id in time_aliases
            ) or (isinstance(fn, ast.Name) and fn.id in bare_time_fns):
                findings.append(
                    self.finding(
                        relpath,
                        node,
                        "wall-clock time.time() used for measurement "
                        "(non-monotonic; jumps under NTP/DST)",
                    )
                )
        return findings
