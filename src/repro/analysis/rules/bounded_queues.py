"""RPR013 — the serve layer must never block unboundedly.

The solve server's whole robustness contract (``repro.serve``) rests
on two invariants: every queue has a depth bound so overload turns
into explicit backpressure (``rejected``/``shed``) instead of memory
growth, and every blocking primitive carries a timeout so a stuck
worker or a dead peer degrades a request instead of hanging a thread
forever.  One unbounded ``Queue()`` or bare ``.get()`` quietly voids
both — the server "works" until the first overload or crash, which is
exactly when it must not.

This rule flags, in any module under a ``serve/`` directory:

- construction of an unbounded queue — ``Queue``/``LifoQueue``/
  ``PriorityQueue``/``JoinableQueue`` with no ``maxsize`` or a
  constant ``maxsize <= 0``, and ``SimpleQueue`` always (it cannot be
  bounded);
- blocking calls with no bound — zero-positional-argument ``.get()``,
  ``.join()``, ``.acquire()``, or ``.wait()`` without a ``timeout``
  keyword (a ``blocking=False``/``block=False`` keyword also counts
  as bounded: it cannot wait at all).

A variable ``maxsize`` and a positional timeout (``t.join(2.0)``)
are accepted — the rule only flags what it can prove unbounded.
``dict.get(key)`` / ``", ".join(parts)`` carry positional arguments
and are never flagged.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from . import Finding, Rule

__all__ = ["BoundedQueueRule"]

#: queue constructors that accept (and must receive) a positive maxsize.
_BOUNDABLE_QUEUES = {"Queue", "LifoQueue", "PriorityQueue", "JoinableQueue"}

#: queue constructors with no bounding knob at all.
_UNBOUNDABLE_QUEUES = {"SimpleQueue"}

#: method calls that block forever when called with no arguments.
_BLOCKING_METHODS = {"get", "join", "acquire", "wait"}


def _call_name(call: ast.Call) -> str:
    fn = call.func
    if isinstance(fn, ast.Name):
        return fn.id
    if isinstance(fn, ast.Attribute):
        return fn.attr
    return ""


def _maxsize_arg(call: ast.Call) -> Optional[ast.expr]:
    """The effective ``maxsize`` expression of a queue constructor."""
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg == "maxsize":
            return kw.value
    return None


class BoundedQueueRule(Rule):
    code = "RPR013"
    name = "serve-bounded-blocking"
    description = (
        "serve-layer queues must be depth-bounded and its blocking "
        "calls (get/join/acquire/wait) must carry timeouts"
    )
    hint = (
        "construct queues with a positive maxsize (or use the bounded "
        "AdmissionQueue) and pass timeout= to every blocking wait so "
        "overload and crashes surface as rejected/degraded, not hangs"
    )
    #: any module under a serve/ directory (see :meth:`applies_to`).
    scope = ("serve/",)

    def applies_to(self, relpath: str) -> bool:
        norm = relpath.replace("\\", "/")
        return "serve" in norm.split("/")[:-1]

    def check(self, tree: ast.AST, source: str, relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in _UNBOUNDABLE_QUEUES:
                findings.append(
                    self.finding(
                        relpath,
                        node,
                        f"{name}() cannot be bounded — overload becomes "
                        "silent memory growth instead of backpressure",
                    )
                )
                continue
            if name in _BOUNDABLE_QUEUES:
                maxsize = _maxsize_arg(node)
                unbounded = maxsize is None or (
                    isinstance(maxsize, ast.Constant)
                    and isinstance(maxsize.value, (int, float))
                    and maxsize.value <= 0
                )
                if unbounded:
                    findings.append(
                        self.finding(
                            relpath,
                            node,
                            f"unbounded {name}() — the serve layer must "
                            "turn overload into explicit rejection, "
                            "never an unbounded queue",
                        )
                    )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_METHODS
                and not node.args
            ):
                kwargs = {kw.arg: kw.value for kw in node.keywords}
                if "timeout" in kwargs:
                    continue
                nonblocking = any(
                    isinstance(kwargs.get(k), ast.Constant)
                    and kwargs[k].value is False
                    for k in ("blocking", "block")
                )
                if nonblocking:
                    continue
                findings.append(
                    self.finding(
                        relpath,
                        node,
                        f".{node.func.attr}() with no timeout — a stuck "
                        "peer hangs this thread forever instead of "
                        "degrading the request",
                    )
                )
        return findings
