"""RPR008 — membership-state transition discipline.

The elastic layer's correctness argument (docs/ELASTICITY.md) rests on
a single-writer invariant: every piece of liveness/membership state —
the plain path's ``grid_down`` flags and the elastic path's per-rank
``alive`` / ``stall_until`` / ``rank_state`` / ``last_heard`` /
``rank_grid`` arrays — is mutated only through
:class:`repro.distributed.elastic.MembershipManager` transitions.  An
event handler that flips a rank-alive flag directly bypasses the
protocol (no suspect/evict bookkeeping, no telemetry, no repartition),
and the happens-before race checker can no longer reason about who
observed what.

The rule flags subscript or attribute assignment (plain or augmented)
whose terminal name is one of the protected arrays, anywhere in the
distributed simulator/elastic modules *outside* the body of
``class MembershipManager`` itself.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from . import Finding, Rule

__all__ = ["MembershipTransitionRule"]

#: the liveness/membership arrays owned by MembershipManager
MEMBERSHIP_NAMES = frozenset(
    {
        "grid_down",
        "alive",
        "stall_until",
        "rank_state",
        "last_heard",
        "rank_grid",
        "below_min",
    }
)

_OWNER_CLASS = "MembershipManager"


def _state_name(node: ast.AST) -> str:
    """Terminal identifier of an assignment target: ``alive`` for
    ``mm.alive[r]``, ``self.rank_state[mask]`` or ``grid_down[g]``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


class MembershipTransitionRule(Rule):
    code = "RPR008"
    name = "membership-transition-discipline"
    description = (
        "liveness/membership state may only be mutated through "
        "MembershipManager transitions, never written directly from "
        "event handlers"
    )
    hint = (
        "call a MembershipManager method (mark_grid_down/up, apply_churn, "
        "scan, repartition) instead of writing the state array, or add "
        "'# repro: noqa[RPR008] <reason>'"
    )
    scope: Tuple[str, ...] = (
        "distributed/simulator.py",
        "distributed/elastic.py",
    )

    def check(self, tree: ast.AST, source: str, relpath: str) -> List[Finding]:
        owner_lines: Set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == _OWNER_CLASS:
                owner_lines.update(range(node.lineno, (node.end_lineno or node.lineno) + 1))
        findings: List[Finding] = []
        for node in ast.walk(tree):
            targets: List[ast.AST] = []
            if isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.Assign):
                # A bare `alive = ...` only rebinds a local name; the
                # protected mutations are element writes and attribute
                # rebinds on a manager instance.
                targets = [
                    t
                    for t in node.targets
                    if isinstance(t, (ast.Subscript, ast.Attribute))
                ]
            for target in targets:
                name = _state_name(target)
                if name in MEMBERSHIP_NAMES and node.lineno not in owner_lines:
                    findings.append(
                        self.finding(
                            relpath,
                            node,
                            f"direct write to membership state {name!r} "
                            "outside MembershipManager",
                        )
                    )
        return findings
