"""RPR001 — shared-write discipline.

The convergence results of the paper (and everything
``repro.analysis.racecheck`` verifies dynamically) assume that *every*
mutation of the shared iterate ``x`` and shared residual ``r`` goes
through a :class:`repro.core.writes.WritePolicy`, which owns the
synchronization.  A bare ``x += e`` or ``r[lo:hi] = fresh`` in an
executor bypasses the policy: under real threads it is a lost-update /
torn-write race, and even in the sequential executors it silently
changes which consistency model the run implements.

The rule flags direct mutation (augmented assignment, or subscript
assignment) of the shared vectors in the three executor modules.  The
sequential engine and the discrete-event simulator *are* their own
serialization points — their commit sites carry
``# repro: noqa[RPR001] <why this is the serialization point>``.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from . import Finding, Rule

__all__ = ["SharedWriteDisciplineRule"]

#: the shared vectors each executor module races on
SHARED_NAMES = frozenset({"x", "r", "x_true"})


def _base_name(node: ast.AST) -> str:
    """Base identifier of an assignment target (``x`` for ``x[a:b]``)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


class SharedWriteDisciplineRule(Rule):
    code = "RPR001"
    name = "shared-write-discipline"
    description = (
        "shared iterate/residual arrays in the async executors must be "
        "mutated through a WritePolicy, never directly"
    )
    hint = (
        "use WritePolicy.add / WritePolicy.assign_slice, or add "
        "'# repro: noqa[RPR001] <reason>' at a proven serialization point"
    )
    scope: Tuple[str, ...] = (
        "core/threaded.py",
        "core/engine.py",
        "distributed/simulator.py",
    )

    def check(self, tree: ast.AST, source: str, relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            targets: List[ast.AST] = []
            if isinstance(node, ast.AugAssign):
                # x += e  /  x[a:b] += e  both mutate the shared buffer.
                targets = [node.target]
            elif isinstance(node, ast.Assign):
                # x[a:b] = v mutates; a bare `x = v` only rebinds the
                # local name and is handled by ordinary code review.
                targets = [t for t in node.targets if isinstance(t, ast.Subscript)]
            for target in targets:
                name = _base_name(target)
                if name in SHARED_NAMES:
                    findings.append(
                        self.finding(
                            relpath,
                            node,
                            f"direct mutation of shared vector {name!r} "
                            "outside a WritePolicy",
                        )
                    )
        return findings
