"""RPR006 — hot-path event emission only through the Tracer API.

The observability layer (:mod:`repro.observe`) exists so that the
correction loops never pay for their own reporting: events go into
per-worker ring buffers with no locking, formatting, or I/O on the hot
path.  A ``print()`` or ``logging`` call inside a backend's solve loop
reintroduces exactly the costs the tracer avoids — stream locks
serialize the workers, formatting allocates, and a single debug print
inside a threaded correction loop can dominate a small solve.  This
rule flags ``print`` and ``logging``/logger calls that appear inside
any ``for``/``while`` loop of the three executors; emit a typed event
through :meth:`repro.observe.Tracer.record` (or ``record_here``)
instead, and let the exporters do the formatting after the run.
"""

from __future__ import annotations

import ast
from typing import List, Set

from . import Finding, Rule

__all__ = ["HotPathEmissionRule"]

#: logging methods whose call inside a loop means formatting + stream
#: locking on the hot path (the module-level ``logging.*`` helpers and
#: the bound ``Logger`` methods share these names).
_LOG_METHODS = {
    "debug",
    "info",
    "warning",
    "warn",
    "error",
    "exception",
    "critical",
    "log",
}


class HotPathEmissionRule(Rule):
    code = "RPR006"
    name = "hot-path-emission"
    description = (
        "no print()/logging inside executor correction loops; "
        "hot-path events must go through the Tracer ring buffers"
    )
    hint = (
        "record a typed event via Tracer.record()/record_here() and "
        "export it after the run"
    )
    scope = (
        "core/engine.py",
        "core/threaded.py",
        "distributed/simulator.py",
    )

    def check(self, tree: ast.AST, source: str, relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        logging_aliases: Set[str] = set()
        logger_names: Set[str] = set()

        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "logging":
                        logging_aliases.add(alias.asname or "logging")
            elif isinstance(node, ast.Assign):
                # `log = logging.getLogger(...)` — track the bound name.
                call = node.value
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr == "getLogger"
                ):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            logger_names.add(tgt.id)

        def emission(call: ast.Call) -> str:
            fn = call.func
            if isinstance(fn, ast.Name) and fn.id == "print":
                return "print()"
            if isinstance(fn, ast.Attribute) and fn.attr in _LOG_METHODS:
                base = fn.value
                if isinstance(base, ast.Name) and (
                    base.id in logging_aliases or base.id in logger_names
                ):
                    return f"{base.id}.{fn.attr}()"
            return ""

        seen: Set[int] = set()  # nested loops: report each call once
        for loop in ast.walk(tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call) or id(node) in seen:
                    continue
                what = emission(node)
                if what:
                    seen.add(id(node))
                    findings.append(
                        self.finding(
                            relpath,
                            node,
                            f"{what} inside an executor loop — emission "
                            "on the hot path bypasses the tracer's "
                            "per-worker ring buffers",
                        )
                    )
        return findings
