"""RPR005 — the ``*Result`` dataclass contract.

Every executor returns a ``*Result`` dataclass, and downstream
consumers (the CLI, the fault-tolerance benchmarks, the conformance
checker) treat the fleet of result types uniformly: each must carry

- ``stalled`` — whether the run ended without satisfying its stopping
  criterion (the paper's "no deadlock" claim surfaces here as a
  stalled-but-finite run, never a hang), and
- ``telemetry`` — the :class:`repro.resilience.FaultTelemetry`
  counters (all zero for a fault-free run),

so that resilience reporting never needs ``hasattr`` probes.  The rule
additionally enforces the standard dataclass footgun: a mutable
default (``[]``, ``{}``, ``set()``, ...) is shared across *all*
instances — it must be ``field(default_factory=...)``.
"""

from __future__ import annotations

import ast
from typing import List

from . import Finding, Rule

__all__ = ["ResultContractRule"]

REQUIRED_FIELDS = ("stalled", "telemetry")
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _is_mutable_default(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(value, ast.Call):
        fn = value.func
        if isinstance(fn, ast.Name) and fn.id in _MUTABLE_CALLS:
            return True
    return False


class ResultContractRule(Rule):
    code = "RPR005"
    name = "result-contract"
    description = (
        "*Result dataclasses must carry 'stalled' and 'telemetry' and "
        "must not use shared mutable defaults"
    )
    hint = (
        "add `stalled: bool = False` and `telemetry: FaultTelemetry = "
        "field(default_factory=FaultTelemetry)`; wrap mutable defaults "
        "in field(default_factory=...)"
    )
    scope = ()

    def check(self, tree: ast.AST, source: str, relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Result") or not _is_dataclass_decorated(node):
                continue
            field_names = {
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
            }
            missing = [f for f in REQUIRED_FIELDS if f not in field_names]
            if missing:
                findings.append(
                    self.finding(
                        relpath,
                        node,
                        f"dataclass {node.name} is missing required result "
                        f"field(s): {', '.join(missing)}",
                    )
                )
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and stmt.value is not None
                    and _is_mutable_default(stmt.value)
                ):
                    fname = (
                        stmt.target.id if isinstance(stmt.target, ast.Name) else "?"
                    )
                    findings.append(
                        self.finding(
                            relpath,
                            stmt,
                            f"mutable default on {node.name}.{fname} is shared "
                            "across instances",
                        )
                    )
        return findings
