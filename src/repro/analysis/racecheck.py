"""Happens-before race/staleness checker for the threaded executor.

:class:`CheckedWrite` wraps any :class:`~repro.core.writes.WritePolicy`
with seqlock-style instrumentation *inside* the policy's own critical
sections: it re-implements ``add`` / ``assign_slice`` / ``read`` using
the wrapped policy's lock objects, interleaving the bookkeeping with
the data movement so the metadata is exactly as consistent as the data
it describes.

Per stripe it maintains

- a **write sequence counter** (odd while a write is in flight — the
  classic seqlock): a reader that observes an odd counter, or a
  counter that changed across its copy, has read a torn stripe;
- a **vector clock** mapping writer thread → number of commits to that
  stripe: successive reads by one thread must observe component-wise
  non-decreasing clocks (the paper's monotone read instants
  ``z_k(tau_k) <= z_k(t)``);

and globally

- a **commit epoch** (total ``add`` commits — the dynamic analogue of
  the models' time instant ``t``) plus an **epoch log** of every
  operation, from which read staleness is measured: when a worker
  commits correction number ``t`` (global count), the read it computed
  from was taken at epoch ``z``; the paper's bounded-delay assumption
  (Section III) demands ``t - 1 - z <= delta``.

:func:`run_conformance` runs a real threaded solve with both shared
vectors instrumented and folds the measurements into a
:class:`ModelConformanceReport`, consumed by the test-suite and by
``python -m repro analyze --conformance``.

Under ``lock``/``atomic`` policies the instrumentation shares the
policy's own locks, so a torn read or a vector-clock regression is a
genuine policy bug, not checker noise.  Wrapping
:class:`~repro.core.writes.UnsafeWrite` (which has no locks) turns the
checker into a tearing *detector* — the ablation that shows the
instrument actually fires.
"""

from __future__ import annotations

import threading
import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.writes import AtomicWrite, LockWrite, WritePolicy

__all__ = ["CheckedWrite", "ModelConformanceReport", "run_conformance"]


@dataclass
class ModelConformanceReport:
    """Empirical verification of the paper's asynchronous model
    assumptions on one instrumented threaded run."""

    policy: str
    n: int
    nstripes: int
    total_commits: int
    total_reads: int
    total_assigns: int
    torn_reads: int
    torn_read_events: List[Tuple[int, int]] = field(default_factory=list)
    """``(thread_slot, stripe)`` of each torn stripe read (truncated)."""
    lock_order_violations: int = 0
    monotone_violations: int = 0
    staleness_bound: int = 0
    """The configured maximum read delay δ (in commit epochs)."""
    max_staleness: int = 0
    mean_staleness: float = 0.0
    staleness_samples: int = 0
    counts: List[int] = field(default_factory=list)
    """Per-grid correction counts from the solve result."""
    p_hat: List[float] = field(default_factory=list)
    """Empirical per-grid update rates ``counts_k / max(counts)`` —
    the measured analogue of the models' ``p_k ~ U[alpha, 1]``."""
    min_update_share: float = 0.0
    rel_residual: float = float("inf")
    diverged: bool = False
    stalled: bool = False

    @property
    def staleness_ok(self) -> bool:
        return self.max_staleness <= self.staleness_bound

    @property
    def monotone_ok(self) -> bool:
        return self.monotone_violations == 0

    @property
    def counts_ok(self) -> bool:
        """Every grid made progress (``p_k >= alpha > 0`` implies no
        grid starves)."""
        return bool(self.counts) and min(self.counts) > 0

    @property
    def passed(self) -> bool:
        return (
            self.torn_reads == 0
            and self.lock_order_violations == 0
            and self.staleness_ok
            and self.monotone_ok
            and self.counts_ok
            and not self.diverged
        )

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] policy={self.policy} commits={self.total_commits} "
            f"reads={self.total_reads} torn={self.torn_reads} "
            f"lock_order_violations={self.lock_order_violations} "
            f"staleness(max/mean/δ)={self.max_staleness}/"
            f"{self.mean_staleness:.1f}/{self.staleness_bound} "
            f"monotone={'ok' if self.monotone_ok else 'VIOLATED'} "
            f"p_hat_min={self.min_update_share:.2f} "
            f"relres={self.rel_residual:.2e}"
        )


class CheckedWrite(WritePolicy):
    """Decorate a :class:`WritePolicy` with happens-before checking.

    The wrapper reuses the inner policy's lock objects, so its
    synchronization semantics (and contention profile) are identical to
    the policy under test — only the bookkeeping rides along inside the
    critical sections.
    """

    #: cap on retained epoch-log entries / torn-read events
    LOG_LIMIT = 100_000

    def __init__(self, inner: WritePolicy) -> None:
        super().__init__(inner.n)
        self.inner = inner
        self.name = f"checked[{inner.name}]"
        if isinstance(inner, AtomicWrite):
            self.nstripes = inner.nstripes
            self.stripe = inner.stripe
            self._locks: List[Optional[threading.Lock]] = list(inner._locks)
        elif isinstance(inner, LockWrite):
            self.nstripes = 1
            self.stripe = max(inner.n, 1)
            self._locks = [inner._lock]
        else:  # UnsafeWrite or a custom unlocked policy: detector mode
            self.nstripes = 1
            self.stripe = max(inner.n, 1)
            self._locks = [None]
        # Seqlock counters: odd while a write to the stripe is in flight.
        self._wseq = [0] * self.nstripes
        # Per-stripe vector clocks: thread ident -> commits to stripe.
        self._clock: List[Dict[int, int]] = [dict() for _ in range(self.nstripes)]
        # Global commit epoch (number of completed add() calls) and the
        # leaf lock guarding it plus the per-thread read bookkeeping.
        self._epoch_lock = threading.Lock()
        self._commits = 0
        self._last_read_epoch: Dict[int, int] = {}
        self._last_clocks_seen: Dict[Tuple[int, int], Dict[int, int]] = {}
        # Measurements.
        self.total_reads = 0
        self.total_assigns = 0
        self.torn_reads = 0
        self.torn_read_events: List[Tuple[int, int]] = []
        self.lock_order_violations = 0
        self.monotone_violations = 0
        self.staleness: List[int] = []
        self.epoch_log: Deque[Tuple[float, str, int, int, int]] = deque(
            maxlen=self.LOG_LIMIT
        )
        """``(perf_counter, op, thread_ident, stripe, wseq_after)``."""
        self._t0 = _time.perf_counter()

    # ------------------------------------------------------------------
    def _ranges(self) -> Iterator[Tuple[int, int, int]]:
        if isinstance(self.inner, AtomicWrite):
            yield from self.inner._ranges()
        else:
            yield 0, 0, self.n

    def _ranges_slice(self, lo: int, hi: int) -> Iterator[Tuple[int, int, int]]:
        if isinstance(self.inner, AtomicWrite):
            yield from self.inner._ranges(lo, hi)
        else:
            yield 0, lo, hi

    def _log(self, op: str, tid: int, s: int) -> None:
        # deque.append is atomic under the GIL; entries record the
        # post-operation sequence number for offline happens-before
        # reconstruction.
        self.epoch_log.append(
            (_time.perf_counter() - self._t0, op, tid, s, self._wseq[s])
        )

    def _check_order(self, order: List[int]) -> None:
        if any(b <= a for a, b in zip(order, order[1:])):
            self.lock_order_violations += 1

    # -- write paths ----------------------------------------------------
    def add(self, target: np.ndarray, update: np.ndarray) -> None:
        tid = threading.get_ident()
        order: List[int] = []
        for s, a, b in self._ranges():
            lock = self._locks[s]
            if lock is not None:
                lock.acquire()
            try:
                self._wseq[s] += 1  # odd: write in flight
                target[a:b] += update[a:b]
                self._clock[s][tid] = self._clock[s].get(tid, 0) + 1
                self._wseq[s] += 1  # even: committed
                self._log("add", tid, s)
            finally:
                if lock is not None:
                    lock.release()
            order.append(s)
        self._check_order(order)
        with self._epoch_lock:
            self._commits += 1
            commit_epoch = self._commits
            z = self._last_read_epoch.get(tid)
        if z is not None:
            # Commits by *other* grids between this grid's read and its
            # own commit — the measured read delay of Section III.
            self.staleness.append(max(0, commit_epoch - 1 - z))

    def assign_slice(
        self, target: np.ndarray, lo: int, hi: int, values: np.ndarray
    ) -> None:
        tid = threading.get_ident()
        order: List[int] = []
        for s, a, b in self._ranges_slice(lo, hi):
            lock = self._locks[s]
            if lock is not None:
                lock.acquire()
            try:
                self._wseq[s] += 1
                target[a:b] = values[a - lo : b - lo]
                self._clock[s][tid] = self._clock[s].get(tid, 0) + 1
                self._wseq[s] += 1
                self._log("assign", tid, s)
            finally:
                if lock is not None:
                    lock.release()
            order.append(s)
        self._check_order(order)
        self.total_assigns += 1

    # -- read path ------------------------------------------------------
    def read(self, source: np.ndarray) -> np.ndarray:
        tid = threading.get_ident()
        out = np.empty(self.n)
        order: List[int] = []
        for s, a, b in self._ranges():
            lock = self._locks[s]
            if lock is not None:
                lock.acquire()
            try:
                pre = self._wseq[s]
                out[a:b] = source[a:b]
                post = self._wseq[s]
                clock_snap = dict(self._clock[s])
                self._log("read", tid, s)
            finally:
                if lock is not None:
                    lock.release()
            if pre % 2 == 1 or post != pre:
                # Seqlock tear: the stripe changed under the copy.
                self.torn_reads += 1
                if len(self.torn_read_events) < 1000:
                    self.torn_read_events.append((tid, s))
            prev = self._last_clocks_seen.get((tid, s))
            if prev is not None and any(
                clock_snap.get(writer, 0) < count for writer, count in prev.items()
            ):
                # A component of the vector clock went backwards: this
                # reader observed an *older* version than it already
                # read — the monotone-read assumption is violated.
                self.monotone_violations += 1
            self._last_clocks_seen[(tid, s)] = clock_snap
            order.append(s)
        self._check_order(order)
        with self._epoch_lock:
            self._last_read_epoch[tid] = self._commits
        self.total_reads += 1
        return out

    # ------------------------------------------------------------------
    def report(
        self,
        staleness_bound: int = 0,
        counts: Optional[np.ndarray] = None,
        rel_residual: float = float("inf"),
        diverged: bool = False,
        stalled: bool = False,
    ) -> ModelConformanceReport:
        """Fold the collected measurements into a report."""
        stal = self.staleness
        counts_list = [int(c) for c in counts] if counts is not None else []
        cmax = max(counts_list) if counts_list else 0
        p_hat = [c / cmax for c in counts_list] if cmax else []
        return ModelConformanceReport(
            policy=self.name,
            n=self.n,
            nstripes=self.nstripes,
            total_commits=self._commits,
            total_reads=self.total_reads,
            total_assigns=self.total_assigns,
            torn_reads=self.torn_reads,
            torn_read_events=list(self.torn_read_events[:100]),
            lock_order_violations=self.lock_order_violations,
            monotone_violations=self.monotone_violations,
            staleness_bound=int(staleness_bound),
            max_staleness=max(stal) if stal else 0,
            mean_staleness=float(np.mean(stal)) if stal else 0.0,
            staleness_samples=len(stal),
            counts=counts_list,
            p_hat=p_hat,
            min_update_share=min(p_hat) if p_hat else 0.0,
            rel_residual=float(rel_residual),
            diverged=bool(diverged),
            stalled=bool(stalled),
        )


def run_conformance(
    solver: Any,
    b: np.ndarray,
    write: str = "lock",
    delta: Optional[int] = None,
    tmax: int = 5,
    rescomp: str = "local",
    criterion: str = "criterion1",
    stripe: int = 1024,
    timeout: float = 120.0,
) -> ModelConformanceReport:
    """Run one instrumented threaded solve and report model conformance.

    ``delta`` is the staleness bound to verify against, in commit
    epochs.  Under criterion 1 every grid performs exactly ``tmax``
    commits, so ``(ngrids - 1) * tmax`` is a *sound* a-priori bound on
    the commits any other grid can interleave between one grid's read
    and its commit — a fault-free run can only exceed it through a
    genuine model violation, which is why criterion 1 is the default
    here.  Under criterion 2 fast grids keep correcting while slow
    ones catch up, so no a-priori bound exists; the default then falls
    back to the run's total commit count (the trivially sound bound),
    and ``max_staleness`` remains the informative measurement.
    """
    from ..core.threaded import run_threaded

    checkers: List[CheckedWrite] = []

    def wrapper(policy: WritePolicy) -> WritePolicy:
        checker = CheckedWrite(policy)
        checkers.append(checker)
        return checker

    result = run_threaded(
        solver,
        b,
        tmax=tmax,
        rescomp=rescomp,
        write=write,
        criterion=criterion,
        stripe=stripe,
        timeout=timeout,
        policy_wrapper=wrapper,
    )
    # checkers[0] instruments the shared iterate x — the vector the
    # paper's read-delay model is stated for.
    xchk = checkers[0]
    if delta is None:
        if criterion == "criterion1":
            delta = (solver.ngrids - 1) * tmax
        else:
            delta = xchk._commits
    return xchk.report(
        staleness_bound=delta,
        counts=result.counts,
        rel_residual=result.rel_residual,
        diverged=result.diverged,
        stalled=result.stalled,
    )
