"""Fault injection and resilience for asynchronous multigrid.

The paper's central claim is that asynchronous additive multigrid
tolerates stragglers and stale reads *by construction* — no grid ever
waits, so a slow or silent grid degrades convergence instead of
deadlocking the solve.  This package makes that claim testable (and
extends it to harder faults) across all three execution backends:

- :mod:`repro.resilience.faults` — declarative :class:`FaultPlan`
  (fail-stop crashes, transient stalls, correction corruption, message
  loss/duplication/delay) plus the seeded runtime
  :class:`FaultInjector` with independent per-fault-class RNG streams.
- :mod:`repro.resilience.guards` — :class:`GuardPolicy` /
  :class:`Guard`: non-finite and magnitude screening of corrections,
  residual-spike detection with checkpoint/rollback, staleness
  watchdog with crash restart budgets, message retransmission and
  dedup policies.
- :mod:`repro.resilience.telemetry` — :class:`FaultTelemetry`, the
  injected-vs-recovered counters every backend attaches to its result.

The executors accept ``faults=`` and ``guard=`` uniformly:

>>> from repro.resilience import FaultPlan, CrashFault, GuardPolicy
>>> plan = FaultPlan(crashes=(CrashFault(grid=1, after=5),),
...                  corruption_probability=0.01, seed=0)
>>> # run_async_engine(solver, b, faults=plan, guard=GuardPolicy())
"""

from .faults import CrashFault, FaultInjector, FaultPlan, StallFault, parse_fault_spec
from .guards import Guard, GuardPolicy
from .telemetry import FaultTelemetry

__all__ = [
    "CrashFault",
    "StallFault",
    "FaultPlan",
    "FaultInjector",
    "parse_fault_spec",
    "Guard",
    "GuardPolicy",
    "FaultTelemetry",
]
