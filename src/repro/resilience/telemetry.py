"""Fault/recovery telemetry shared by all three execution backends.

Every asynchronous executor threads one :class:`FaultTelemetry` through
its run and attaches it to its result object, so a benchmark can put
"what was injected" and "what the guards did about it" on the same row:
injected crashes/stalls/corruptions on one side, detections,
rejections, rollbacks, restarts and retransmissions on the other.

The counters are plain ints guarded by one lock — the threaded executor
increments them from worker threads; the sequential engine and the
discrete-event simulator pay one uncontended lock acquire per event,
which is noise next to a correction's SpMV.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields

__all__ = ["FaultTelemetry"]


@dataclass
class FaultTelemetry:
    """Counters for injected faults and the guard layer's responses.

    Injection side (what the :class:`~repro.resilience.FaultInjector`
    did to the run):

    - ``injected_crashes`` — fail-stop grid/process deaths.
    - ``injected_stalls`` — transient straggler pauses.
    - ``injected_corruptions`` — corrections perturbed (NaN/Inf/scale).
    - ``messages_duplicated`` / ``messages_delayed`` — message-level
      faults (distributed simulator only).

    Detection/recovery side (what the :class:`~repro.resilience.Guard`
    observed and did):

    - ``corrections_rejected`` — corrections discarded by the
      non-finite or magnitude screen.
    - ``corrections_clamped`` — corrections scaled down instead of
      discarded (``on_magnitude="clamp"``).
    - ``checkpoints`` / ``rollbacks`` — iterate snapshots taken and
      restored after a residual spike or divergence.
    - ``watchdog_detections`` — grids/processes declared dead or hung
      by the staleness watchdog/heartbeat monitor.
    - ``restarts`` — crashed grids/processes restarted and re-synced.
    - ``retransmissions`` — dropped messages re-sent (with backoff).
    - ``messages_lost`` — messages abandoned after exhausting retries
      (or with retransmission disabled).
    - ``duplicates_discarded`` — duplicate deliveries suppressed by
      sequence-number dedup.
    """

    injected_crashes: int = 0
    injected_stalls: int = 0
    injected_corruptions: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0

    corrections_rejected: int = 0
    corrections_clamped: int = 0
    checkpoints: int = 0
    rollbacks: int = 0
    watchdog_detections: int = 0
    restarts: int = 0
    retransmissions: int = 0
    messages_lost: int = 0
    duplicates_discarded: int = 0

    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, counter: str, by: int = 1) -> None:
        """Thread-safely increment one counter by ``by``."""
        if by < 0:
            raise ValueError("telemetry increments must be non-negative")
        with self._lock:
            setattr(self, counter, getattr(self, counter) + by)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """All counters as a plain ``{name: int}`` dict."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "_lock"
        }

    @property
    def total_injected(self) -> int:
        return (
            self.injected_crashes
            + self.injected_stalls
            + self.injected_corruptions
            + self.messages_duplicated
            + self.messages_delayed
        )

    @property
    def total_recovery_actions(self) -> int:
        return (
            self.corrections_rejected
            + self.corrections_clamped
            + self.rollbacks
            + self.restarts
            + self.retransmissions
            + self.duplicates_discarded
        )

    def merge(self, other: "FaultTelemetry") -> "FaultTelemetry":
        """Add ``other``'s counters into self (returns self)."""
        for name, value in other.as_dict().items():
            self.bump(name, value)
        return self

    def summary(self) -> str:
        """One-line human-readable digest of the nonzero counters."""
        nonzero = [f"{k}={v}" for k, v in self.as_dict().items() if v]
        return ", ".join(nonzero) if nonzero else "no faults"
