"""Fault/recovery telemetry shared by all three execution backends.

Every asynchronous executor threads one :class:`FaultTelemetry` through
its run and attaches it to its result object, so a benchmark can put
"what was injected" and "what the guards did about it" on the same row:
injected crashes/stalls/corruptions on one side, detections,
rejections, rollbacks, restarts and retransmissions on the other.

The counters are plain ints with **single-writer** semantics: each
instance is only ever bumped from one thread (the engine/simulator
scheduler, a supervisor, or one worker's private shard), so increments
need no lock.  The threaded executor gives every worker its own shard
and folds them into the run's main telemetry through :meth:`merge` once
at run end — one merge path instead of one lock acquire per bump on the
hot path (the same per-worker-buffer discipline as
:class:`repro.observe.Tracer`).  Cross-backend aggregation goes through
:meth:`register_into`, which exposes the counters to a
:class:`repro.observe.Metrics` registry as a provider.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict

__all__ = ["FaultTelemetry"]


@dataclass
class FaultTelemetry:
    """Counters for injected faults and the guard layer's responses.

    Injection side (what the :class:`~repro.resilience.FaultInjector`
    did to the run):

    - ``injected_crashes`` — fail-stop grid/process deaths.
    - ``injected_stalls`` — transient straggler pauses.
    - ``injected_corruptions`` — corrections perturbed (NaN/Inf/scale).
    - ``messages_duplicated`` / ``messages_delayed`` — message-level
      faults (distributed simulator only).

    Detection/recovery side (what the :class:`~repro.resilience.Guard`
    observed and did):

    - ``corrections_rejected`` — corrections discarded by the
      non-finite or magnitude screen.
    - ``corrections_clamped`` — corrections scaled down instead of
      discarded (``on_magnitude="clamp"``).
    - ``checkpoints`` / ``rollbacks`` — iterate snapshots taken and
      restored after a residual spike or divergence.
    - ``watchdog_detections`` — grids/processes declared dead or hung
      by the staleness watchdog/heartbeat monitor.
    - ``alert_stops`` — runs aborted early by a live anomaly alert
      (the ``alert_stop`` policy of :mod:`repro.observe.live`).
    - ``restarts`` — crashed grids/processes restarted and re-synced.
    - ``retransmissions`` — dropped messages re-sent (with backoff).
    - ``messages_lost`` — messages abandoned after exhausting retries
      (or with retransmission disabled).
    - ``duplicates_discarded`` — duplicate deliveries suppressed by
      sequence-number dedup.

    Message accounting (distributed simulator):

    - ``messages_sent`` — transmissions attempted, including retries.
    - ``messages_delivered`` — messages that reached their destination.
    - ``messages_dropped`` — individual transmissions lost in flight
      (a message dropped then retransmitted successfully counts one
      drop and one delivery).
    - ``delivery_attempts`` — histogram ``{attempts: messages}`` of how
      many transmissions each *delivered* message needed (1 = first
      try); recorded via :meth:`record_delivery`.

    Elastic membership (:mod:`repro.distributed.elastic`):

    - ``rank_crashes`` / ``rank_stalls`` — churn-plan events applied.
    - ``member_joins`` / ``member_leaves`` — ranks that joined cold or
      left permanently.
    - ``member_suspects`` — ranks whose heartbeats went silent past the
      suspect timeout.
    - ``member_evictions`` — suspects declared dead and removed.
    - ``member_recoveries`` — suspected/stalled ranks that resumed
      heartbeating and were re-admitted.
    - ``repartitions`` — incremental work re-partitions triggered by a
      membership change.
    - ``handoffs`` — checkpointed grid-level state handoffs to a new
      owner after a repartition.
    """

    injected_crashes: int = 0
    injected_stalls: int = 0
    injected_corruptions: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0

    corrections_rejected: int = 0
    corrections_clamped: int = 0
    checkpoints: int = 0
    rollbacks: int = 0
    watchdog_detections: int = 0
    alert_stops: int = 0
    restarts: int = 0
    retransmissions: int = 0
    messages_lost: int = 0
    duplicates_discarded: int = 0

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0

    rank_crashes: int = 0
    rank_stalls: int = 0
    member_joins: int = 0
    member_leaves: int = 0
    member_suspects: int = 0
    member_evictions: int = 0
    member_recoveries: int = 0
    repartitions: int = 0
    handoffs: int = 0

    delivery_attempts: Dict[int, int] = field(default_factory=dict)

    def bump(self, counter: str, by: int = 1) -> None:
        """Increment one counter by ``by`` (single-writer: only the
        owning thread may bump an instance — give each worker its own
        shard and :meth:`merge` them at run end)."""
        if by < 0:
            raise ValueError("telemetry increments must be non-negative")
        setattr(self, counter, getattr(self, counter) + by)

    def record_delivery(self, attempts: int) -> None:
        """Record one delivered message that needed ``attempts``
        transmissions (1 = delivered on the first try)."""
        if attempts < 1:
            raise ValueError("a delivered message took at least one attempt")
        self.delivery_attempts[attempts] = self.delivery_attempts.get(attempts, 0) + 1

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """All counters as a flat ``{name: int}`` dict; the delivery
        histogram is flattened to ``delivery_attempts[k]`` keys so the
        result stays numeric-valued for :class:`~repro.observe.Metrics`."""
        out: Dict[str, int] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "delivery_attempts":
                for k in sorted(value):
                    out[f"delivery_attempts[{k}]"] = value[k]
            else:
                out[f.name] = value
        return out

    @property
    def total_injected(self) -> int:
        return (
            self.injected_crashes
            + self.injected_stalls
            + self.injected_corruptions
            + self.messages_duplicated
            + self.messages_delayed
        )

    @property
    def total_recovery_actions(self) -> int:
        return (
            self.corrections_rejected
            + self.corrections_clamped
            + self.rollbacks
            + self.restarts
            + self.retransmissions
            + self.duplicates_discarded
        )

    def merge(self, other: "FaultTelemetry") -> "FaultTelemetry":
        """Add ``other``'s counters into self (returns self) — the
        single path by which worker shards reach a run's telemetry."""
        for f in fields(self):
            if f.name == "delivery_attempts":
                for k, v in other.delivery_attempts.items():
                    self.delivery_attempts[k] = self.delivery_attempts.get(k, 0) + v
            else:
                self.bump(f.name, getattr(other, f.name))
        return self

    def register_into(self, metrics: Any, name: str = "resilience") -> None:
        """Expose these counters through a
        :class:`repro.observe.Metrics` registry as a live provider
        (collected lazily — no copies, no locks)."""
        metrics.register_provider(name, self.as_dict)

    def summary(self) -> str:
        """One-line human-readable digest of the nonzero counters."""
        nonzero = [f"{k}={v}" for k, v in self.as_dict().items() if v]
        return ", ".join(nonzero) if nonzero else "no faults"
