"""Declarative fault plans and the seeded runtime injector.

A :class:`FaultPlan` describes *what goes wrong* in one asynchronous
run, independent of which executor runs it:

- **fail-stop crashes** (:class:`CrashFault`) — grid/process ``grid``
  dies for good after completing its ``after``-th correction;
- **transient stalls** (:class:`StallFault`) — grid ``grid`` freezes
  for ``duration`` after its ``after``-th correction (a straggler, not
  a death);
- **correction corruption** — each computed correction is, with
  probability ``corruption_probability``, perturbed in one entry:
  ``nan``/``inf`` poison values or a ``scale`` perturbation (one entry
  multiplied by ``corruption_scale`` — the "bit flipped in the
  exponent" model of Coleman & Sosonkina's transient-fault study);
- **message faults** (distributed simulator only) — extra loss on top
  of :class:`~repro.distributed.NetworkModel.drop_probability`, plus
  duplication and long-delay schedules.

``duration``/delay units are the executing backend's native clock:
micro-steps for :func:`repro.core.engine.run_async_engine`, wall-clock
seconds for :func:`repro.core.threaded.run_threaded`, simulated seconds
for :func:`repro.distributed.simulate_distributed`.

The runtime side is :class:`FaultInjector`: built once per run from the
plan, it draws every random decision from its own independent seeded
streams (corruption, drop, duplication, delay), so enabling one fault
class never perturbs another's sequence — the same property the
satellite fix gives :class:`~repro.distributed.NetworkModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .telemetry import FaultTelemetry

__all__ = ["CrashFault", "StallFault", "FaultPlan", "FaultInjector", "parse_fault_spec"]

_CORRUPTION_MODES = ("nan", "inf", "scale")


@dataclass(frozen=True)
class CrashFault:
    """Fail-stop: ``grid`` dies after completing ``after`` corrections."""

    grid: int
    after: int

    def __post_init__(self) -> None:
        if self.grid < 0 or self.after < 0:
            raise ValueError("crash grid/after must be non-negative")


@dataclass(frozen=True)
class StallFault:
    """Transient straggler: ``grid`` pauses ``duration`` (backend time
    units) after completing ``after`` corrections."""

    grid: int
    after: int
    duration: float

    def __post_init__(self) -> None:
        if self.grid < 0 or self.after < 0:
            raise ValueError("stall grid/after must be non-negative")
        if self.duration <= 0:
            raise ValueError("stall duration must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will be injected into one asynchronous run."""

    crashes: Tuple[CrashFault, ...] = ()
    stalls: Tuple[StallFault, ...] = ()
    corruption_probability: float = 0.0
    corruption_mode: str = "nan"
    corruption_scale: float = 1e8
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    delay_probability: float = 0.0
    delay_factor: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stalls", tuple(self.stalls))
        for name in (
            "corruption_probability",
            "drop_probability",
            "duplicate_probability",
            "delay_probability",
        ):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")
        if self.corruption_mode not in _CORRUPTION_MODES:
            raise ValueError(
                f"corruption_mode must be one of {_CORRUPTION_MODES}"
            )
        if self.corruption_scale <= 0 or self.delay_factor <= 0:
            raise ValueError("corruption_scale/delay_factor must be positive")

    @property
    def active(self) -> bool:
        """True when the plan injects anything at all."""
        return bool(
            self.crashes
            or self.stalls
            or self.corruption_probability
            or self.drop_probability
            or self.duplicate_probability
            or self.delay_probability
        )

    def __bool__(self) -> bool:  # pragma: no cover - convenience alias
        return self.active


def parse_fault_spec(spec: str, seed: int = 0) -> FaultPlan:
    """Parse the CLI's compact fault spec into a :class:`FaultPlan`.

    Clauses are ``;``-separated, each ``kind:options`` with
    ``,``-separated ``key=value`` options.  Crash/stall accept the
    shorthand ``grid@after``::

        crash:1@5
        stall:2@3,duration=200
        corrupt:p=0.01,mode=nan,scale=1e8
        drop:p=0.05 ; dup:p=0.01 ; delay:p=0.1,factor=5

    Example: ``"crash:1@5;corrupt:p=0.01;drop:p=0.05"``.
    """
    crashes: List[CrashFault] = []
    stalls: List[StallFault] = []
    kw: Dict[str, object] = {}
    for raw in spec.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        kind, _, rest = clause.partition(":")
        kind = kind.strip().lower()
        opts: Dict[str, str] = {}
        positional: Optional[str] = None
        for tok in filter(None, (t.strip() for t in rest.split(","))):
            if "=" in tok:
                key, _, val = tok.partition("=")
                opts[key.strip()] = val.strip()
            elif positional is None:
                positional = tok
            else:
                raise ValueError(f"cannot parse fault clause {clause!r}")
        try:
            if kind in ("crash", "stall"):
                if positional is not None and "@" in positional:
                    g, _, a = positional.partition("@")
                    opts.setdefault("grid", g)
                    opts.setdefault("after", a)
                grid = int(opts["grid"])
                after = int(opts["after"])
                if kind == "crash":
                    crashes.append(CrashFault(grid, after))
                else:
                    stalls.append(
                        StallFault(grid, after, float(opts.get("duration", 1.0)))
                    )
            elif kind == "corrupt":
                kw["corruption_probability"] = float(opts["p"])
                if "mode" in opts:
                    kw["corruption_mode"] = opts["mode"]
                if "scale" in opts:
                    kw["corruption_scale"] = float(opts["scale"])
            elif kind == "drop":
                kw["drop_probability"] = float(opts["p"])
            elif kind == "dup":
                kw["duplicate_probability"] = float(opts["p"])
            elif kind == "delay":
                kw["delay_probability"] = float(opts["p"])
                if "factor" in opts:
                    kw["delay_factor"] = float(opts["factor"])
            else:
                raise ValueError(
                    f"unknown fault kind {kind!r} "
                    "(known: crash, stall, corrupt, drop, dup, delay)"
                )
        except KeyError as exc:
            raise ValueError(
                f"fault clause {clause!r} is missing option {exc}"
            ) from None
        except ValueError as exc:
            if "fault" in str(exc):  # already contextualized
                raise
            raise ValueError(
                f"cannot parse fault clause {clause!r}: {exc}"
            ) from None
    return FaultPlan(crashes=tuple(crashes), stalls=tuple(stalls), seed=seed, **kw)


class FaultInjector:
    """Runtime sampler for one :class:`FaultPlan`.

    Each fault class draws from its own stream spawned from
    ``plan.seed`` (`SeedSequence.spawn`), so the corruption sequence for
    a given seed is identical whether or not message faults are enabled,
    and vice versa.  Deterministic schedules (crashes, stalls) are
    indexed by ``(grid, corrections completed)``.
    """

    def __init__(self, plan: FaultPlan, ngrids: int) -> None:
        self.plan = plan
        self.ngrids = int(ngrids)
        for f in plan.crashes:
            if f.grid >= ngrids:
                raise ValueError(f"crash grid {f.grid} out of range (ngrids={ngrids})")
        for f in plan.stalls:
            if f.grid >= ngrids:
                raise ValueError(f"stall grid {f.grid} out of range (ngrids={ngrids})")
        streams = np.random.SeedSequence(plan.seed).spawn(4)
        self._rng_corrupt = np.random.default_rng(streams[0])
        self._rng_drop = np.random.default_rng(streams[1])
        self._rng_dup = np.random.default_rng(streams[2])
        self._rng_delay = np.random.default_rng(streams[3])
        self._crash_at: Dict[int, int] = {}
        for f in plan.crashes:
            prev = self._crash_at.get(f.grid)
            self._crash_at[f.grid] = f.after if prev is None else min(prev, f.after)
        self._crash_fired: set = set()
        self._stalls: Dict[Tuple[int, int], float] = {
            (f.grid, f.after): f.duration for f in plan.stalls
        }

    # -- deterministic schedules --------------------------------------
    def crash_due(self, grid: int, completed: int) -> bool:
        """True when ``grid`` fail-stops having completed ``completed``.

        One-shot (consuming): a fail-stop kills a process once; a
        guard-restarted replacement does not inherit the sentence.
        """
        at = self._crash_at.get(grid)
        if at is None or grid in self._crash_fired or completed < at:
            return False
        self._crash_fired.add(grid)
        return True

    def stall_due(self, grid: int, completed: int) -> Optional[float]:
        """Stall duration due for ``grid`` at ``completed``, else None."""
        return self._stalls.get((grid, completed))

    def forgive_completed_crashes(self, counts: np.ndarray) -> None:
        """Mark crash faults whose trigger point already passed as fired.

        A restarted worker *process* builds a fresh injector (the
        one-shot ``_crash_fired`` state died with its predecessor); the
        shared correction counts say which sentences were already
        executed, and those must not be re-served — otherwise a
        restarted process crash-loops until the restart budget runs out.
        """
        for grid, at in self._crash_at.items():
            if int(counts[grid]) >= at:
                self._crash_fired.add(grid)

    # -- stochastic faults --------------------------------------------
    def corrupt(
        self, e: np.ndarray, telemetry: Optional[FaultTelemetry] = None
    ) -> np.ndarray:
        """Return ``e`` possibly perturbed in one entry (copy if so)."""
        p = self.plan.corruption_probability
        if p == 0.0 or self._rng_corrupt.uniform() >= p:
            return e
        out = np.array(e, copy=True)
        if out.size:
            idx = int(self._rng_corrupt.integers(out.size))
            mode = self.plan.corruption_mode
            if mode == "nan":
                out[idx] = np.nan
            elif mode == "inf":
                out[idx] = np.inf if self._rng_corrupt.uniform() < 0.5 else -np.inf
            else:  # scale — exponent bit-flip model
                out[idx] *= self.plan.corruption_scale
        if telemetry is not None:
            telemetry.bump("injected_corruptions")
        return out

    def message_dropped(self) -> bool:
        """Extra (plan-level) loss, sampled per transmission attempt."""
        p = self.plan.drop_probability
        return bool(p and self._rng_drop.uniform() < p)

    def message_duplicated(self) -> bool:
        p = self.plan.duplicate_probability
        return bool(p and self._rng_dup.uniform() < p)

    def message_delay_factor(self) -> Optional[float]:
        """Multiplier (> 1) for a delayed message's latency, else None."""
        p = self.plan.delay_probability
        if p and self._rng_delay.uniform() < p:
            return float(self.plan.delay_factor)
        return None
