"""Detection and recovery: the guard layer.

Asynchronous additive multigrid has no synchronization points where a
conventional solver would notice a fault, so detection must be cheap,
local, and require no coordination — exactly the constraints of
Coleman & Sosonkina's fault-tolerant asynchronous iterations.  The
:class:`GuardPolicy` groups the knobs; a per-run :class:`Guard` holds
the mutable state (checkpoint, rollback/restart budgets):

- **correction screening** (:meth:`Guard.screen`) — a correction with a
  non-finite entry, or with norm beyond ``magnitude_bound x ||b||``, is
  rejected (or clamped) *before* it touches the shared iterate.  One
  ``isfinite`` pass and one max-abs per correction; no reductions
  across grids.
- **residual-spike detection + checkpoint/rollback**
  (:meth:`Guard.checkpoint_or_rollback`) — the executor periodically
  offers the current iterate and relative residual; a spike past
  ``spike_factor x`` the last checkpoint (or a non-finite residual)
  returns the checkpointed iterate to restore instead of recording a
  new snapshot.
- **staleness watchdog + restart budgets** — executors consult
  ``watchdog``/``watchdog_timeout``/``watchdog_microsteps`` to declare
  a silent grid dead, and :meth:`Guard.try_restart` to spend one of
  ``max_restarts`` re-spawns (with replica re-sync, executor-specific).
- **message policies** (distributed) — ``retransmit`` with exponential
  backoff up to ``max_retransmits``, and sequence-number
  ``dedup_messages``.

``guard=None`` everywhere means *no protection*: faults land unchecked,
which is the ablation the fault-tolerance benchmark contrasts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .telemetry import FaultTelemetry

__all__ = ["GuardPolicy", "Guard"]

_ON_MAGNITUDE = ("reject", "clamp")


@dataclass(frozen=True)
class GuardPolicy:
    """Configuration of the detection/recovery layer.

    Time-like fields follow the executing backend's clock (seconds for
    the threaded executor, simulated seconds for the distributed
    simulator, micro-steps for the sequential engine — the engine uses
    ``watchdog_microsteps``, auto-derived when None).
    """

    #: reject corrections containing NaN/Inf entries
    reject_nonfinite: bool = True
    #: reject/clamp corrections with max-abs beyond this multiple of ||b||
    magnitude_bound: float = 1e4
    #: what to do with an oversized (but finite) correction
    on_magnitude: str = "reject"
    #: residual growth past the last checkpoint that triggers rollback
    spike_factor: float = 100.0
    #: checkpoint every this many correction *rounds* (engine/distributed)
    checkpoint_interval: int = 5
    #: checkpoint period in wall seconds (threaded supervisor)
    checkpoint_period_s: float = 0.05
    #: rollback budget; 0 disables rollback entirely
    max_rollbacks: int = 10
    #: enable the staleness watchdog / heartbeat monitor
    watchdog: bool = True
    #: engine: micro-steps without progress before a grid is declared
    #: dead (None = auto, ~5 fault-free V-cycles)
    watchdog_microsteps: Optional[int] = None
    #: threaded/distributed: seconds without a heartbeat before a
    #: worker/process is declared dead
    watchdog_timeout: float = 0.25
    #: restart grids/processes declared dead (with replica re-sync)
    restart_crashed: bool = True
    #: restart budget across the whole run
    max_restarts: int = 3
    #: extra delay between detection and the restarted grid's first work
    restart_delay: float = 0.0
    #: distributed: re-send dropped messages with exponential backoff
    retransmit: bool = True
    retransmit_timeout: float = 1e-4
    max_retransmits: int = 3
    #: distributed: discard duplicate deliveries by sequence number
    dedup_messages: bool = True

    def __post_init__(self) -> None:
        if self.on_magnitude not in _ON_MAGNITUDE:
            raise ValueError(f"on_magnitude must be one of {_ON_MAGNITUDE}")
        if self.magnitude_bound <= 0 or self.spike_factor <= 1.0:
            raise ValueError("magnitude_bound must be > 0 and spike_factor > 1")
        if self.checkpoint_interval < 1 or self.checkpoint_period_s <= 0:
            raise ValueError("checkpoint cadence must be positive")
        if min(self.max_rollbacks, self.max_restarts, self.max_retransmits) < 0:
            raise ValueError("budgets must be non-negative")
        if self.watchdog_timeout <= 0 or self.retransmit_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if self.restart_delay < 0:
            raise ValueError("restart_delay must be non-negative")


class Guard:
    """Per-run mutable guard state built from a :class:`GuardPolicy`.

    ``ref_norm`` anchors the magnitude screen (executors pass
    ``||b||``); all detections/recoveries are tallied into
    ``telemetry``.  Thread-safety: :meth:`screen` only reads policy
    fields, so worker threads may call it concurrently — each passing
    its *own* single-writer telemetry shard (merged at run end) so no
    bump contends; checkpoint/rollback and restart bookkeeping are
    supervisor/scheduler-only and tally into the guard's telemetry.
    """

    def __init__(
        self,
        policy: GuardPolicy,
        ref_norm: float,
        telemetry: Optional[FaultTelemetry] = None,
    ) -> None:
        self.policy = policy
        self.ref_norm = max(float(ref_norm), 1e-30)
        self.telemetry = telemetry if telemetry is not None else FaultTelemetry()
        self._ckpt_x: Optional[np.ndarray] = None
        self._ckpt_rel: float = np.inf
        self.rollbacks_used = 0
        self.restarts_used = 0

    # -- correction screening -----------------------------------------
    def screen(
        self, e: np.ndarray, telemetry: Optional[FaultTelemetry] = None
    ) -> Optional[np.ndarray]:
        """Vet one correction; returns the (possibly clamped) vector to
        apply, or None when it must be discarded.  Concurrent callers
        pass their own ``telemetry`` shard; None tallies into the
        guard's own (scheduler/supervisor use)."""
        tel = self.telemetry if telemetry is None else telemetry
        pol = self.policy
        if pol.reject_nonfinite and not np.all(np.isfinite(e)):
            tel.bump("corrections_rejected")
            return None
        if e.size:
            mag = float(np.abs(e).max())
            bound = pol.magnitude_bound * self.ref_norm
            if mag > bound:
                if pol.on_magnitude == "clamp":
                    tel.bump("corrections_clamped")
                    return e * (bound / mag)
                tel.bump("corrections_rejected")
                return None
        return e

    # -- checkpoint / rollback ----------------------------------------
    def checkpoint_or_rollback(
        self, x: np.ndarray, rel: float
    ) -> Tuple[str, Optional[np.ndarray]]:
        """Offer the current state; returns one of

        - ``("checkpoint", None)`` — state recorded as the new snapshot;
        - ``("rollback", x_restore)`` — residual spiked (or went
          non-finite): restore the returned iterate;
        - ``("none", None)`` — spike detected but the rollback budget is
          spent or no checkpoint exists yet.
        """
        healthy = np.isfinite(rel) and (
            self._ckpt_x is None or rel <= self.policy.spike_factor * self._ckpt_rel
        )
        if healthy:
            self._ckpt_x = np.array(x, copy=True)
            self._ckpt_rel = float(rel)
            self.telemetry.bump("checkpoints")
            return "checkpoint", None
        if self._ckpt_x is not None and self.rollbacks_used < self.policy.max_rollbacks:
            self.rollbacks_used += 1
            self.telemetry.bump("rollbacks")
            return "rollback", np.array(self._ckpt_x, copy=True)
        return "none", None

    # -- restart budget ------------------------------------------------
    def try_restart(self) -> bool:
        """Spend one restart from the budget (True when granted)."""
        if not self.policy.restart_crashed:
            return False
        if self.restarts_used >= self.policy.max_restarts:
            return False
        self.restarts_used += 1
        self.telemetry.bump("restarts")
        return True
