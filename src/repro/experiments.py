"""High-level experiment harness used by the benchmarks.

Encodes the paper's measurement protocol (Section V):

- **Method specs** name the twelve Table-I rows (``sync Mult``,
  ``sync Multadd lock/atomic``, ``sync AFACx lock/atomic``, async
  ``AFACx lock/atomic``, async ``Multadd`` in lock/atomic x
  global/local, and ``r-Multadd``).
- **Convergence measurement**: relative residual after N "V-cycles"
  (for asynchronous methods, N corrections per grid under a criterion),
  averaged over several seeded runs.
- **Cycles-to-tolerance**: the paper sweeps 5, 10, ..., 100 V-cycles,
  records ``||r||/||b||`` per count, and reports the first count below
  ``tau = 1e-9``.  We do the same with a single criterion-2 engine run
  per seed using checkpoints.
- **Timing**: wall-clock estimates come from the machine model
  (:mod:`repro.core.perfmodel`) executing the same schedule at the
  measured cycle count — see DESIGN.md's substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .amg import Hierarchy, SetupOptions, setup_hierarchy
from .core.engine import run_async_engine
from .core.perfmodel import MachineParams, PerfModel
from .solvers import AFACx, Multadd, MultiplicativeMultigrid
from .utils import spawn_seeds

__all__ = [
    "MethodSpec",
    "TABLE1_METHODS",
    "build_solver",
    "mean_final_relres",
    "cycles_to_tolerance",
    "table1_entry",
    "Table1Entry",
]


@dataclass(frozen=True)
class MethodSpec:
    """One method row of Table I.

    ``kind`` is ``"mult"``, ``"multadd"`` or ``"afacx"``; asynchronous
    methods carry the residual-computation mode and write policy.
    """

    label: str
    kind: str
    asynchronous: bool = False
    rescomp: str = "local"  # local | global | rupdate
    write: str = "lock"  # lock | atomic

    def __post_init__(self) -> None:
        if self.kind not in ("mult", "multadd", "afacx"):
            raise ValueError(f"unknown kind {self.kind!r}")
        if self.rescomp not in ("local", "global", "rupdate"):
            raise ValueError(f"unknown rescomp {self.rescomp!r}")
        if self.write not in ("lock", "atomic"):
            raise ValueError(f"unknown write {self.write!r}")


#: The twelve method rows of Table I, in the paper's order.
TABLE1_METHODS: Tuple[MethodSpec, ...] = (
    MethodSpec("sync Mult", "mult"),
    MethodSpec("sync Multadd, lock-write", "multadd", write="lock"),
    MethodSpec("sync Multadd, atomic-write", "multadd", write="atomic"),
    MethodSpec("sync AFACx, lock-write", "afacx", write="lock"),
    MethodSpec("sync AFACx, atomic-write", "afacx", write="atomic"),
    MethodSpec("AFACx, lock-write", "afacx", asynchronous=True, write="lock"),
    MethodSpec("AFACx, atomic-write", "afacx", asynchronous=True, write="atomic"),
    MethodSpec(
        "Multadd, lock-write, global-res",
        "multadd",
        asynchronous=True,
        rescomp="global",
        write="lock",
    ),
    MethodSpec(
        "Multadd, lock-write, local-res",
        "multadd",
        asynchronous=True,
        rescomp="local",
        write="lock",
    ),
    MethodSpec(
        "Multadd, atomic-write, global-res",
        "multadd",
        asynchronous=True,
        rescomp="global",
        write="atomic",
    ),
    MethodSpec(
        "Multadd, atomic-write, local-res",
        "multadd",
        asynchronous=True,
        rescomp="local",
        write="atomic",
    ),
    MethodSpec(
        "r-Multadd, atomic-write, local-res",
        "multadd",
        asynchronous=True,
        rescomp="rupdate",
        write="atomic",
    ),
)


def build_solver(spec: MethodSpec, hierarchy: Hierarchy, smoother: str, **kw):
    """Instantiate the solver object a spec refers to.

    ``lambda_mode`` only applies to Multadd and is dropped for the
    other kinds so one smoother-kwargs dict can drive all twelve
    methods of a Table-I column.
    """
    if spec.kind == "multadd":
        return Multadd(hierarchy, smoother=smoother, **kw)
    kw = dict(kw)
    kw.pop("lambda_mode", None)
    if spec.kind == "mult":
        return MultiplicativeMultigrid(hierarchy, smoother=smoother, **kw)
    return AFACx(hierarchy, smoother=smoother, **kw)


def mean_final_relres(
    spec: MethodSpec,
    hierarchy: Hierarchy,
    b: np.ndarray,
    smoother: str,
    tmax: int = 20,
    runs: int = 3,
    seed: int = 0,
    alpha: float = 0.1,
    criterion: str = "criterion1",
    **solver_kw,
) -> float:
    """Mean ``||r||/||b||`` after ``tmax`` V-cycles (Figs. 1/2/4/5 metric).

    Synchronous methods are deterministic (one run); asynchronous
    methods average ``runs`` sequential-engine runs with independent
    schedule seeds.  Divergence returns ``inf``.
    """
    solver = build_solver(spec, hierarchy, smoother, **solver_kw)
    if not spec.asynchronous:
        res = solver.solve(b, tmax=tmax)
        return float("inf") if res.diverged else res.final_relres
    vals = []
    for s in spawn_seeds(seed, runs):
        res = run_async_engine(
            solver,
            b,
            tmax=tmax,
            rescomp=spec.rescomp,
            write=spec.write,
            criterion=criterion,
            alpha=alpha,
            seed=s,
        )
        if res.diverged:
            return float("inf")
        vals.append(res.rel_residual)
    return float(np.mean(vals))


def cycles_to_tolerance(
    spec: MethodSpec,
    hierarchy: Hierarchy,
    b: np.ndarray,
    smoother: str,
    tol: float = 1e-9,
    step: int = 5,
    max_cycles: int = 400,
    runs: int = 3,
    seed: int = 0,
    alpha: float = 0.1,
    **solver_kw,
) -> Tuple[Optional[int], float]:
    """First V-cycle count (multiple of ``step``) with mean relres < tol.

    Returns ``(vcycles, corrects)``; ``(None, nan)`` when the method
    never crosses the tolerance within ``max_cycles`` (the paper's
    dagger).  ``corrects`` is the mean corrections per grid at that
    cycle count (== vcycles for synchronous methods).
    """
    solver = build_solver(spec, hierarchy, smoother, **solver_kw)
    if not spec.asynchronous:
        res = solver.solve(b, tmax=max_cycles)
        if res.diverged:
            return None, float("nan")
        for t, rel in enumerate(res.residual_history, start=1):
            if rel < tol:
                v = -(-t // step) * step  # round up to the step grid
                return v, float(v)
        return None, float("nan")

    checkpoints = list(range(step, max_cycles + 1, step))
    per_run: List[Dict[int, Tuple[float, float]]] = []
    for s in spawn_seeds(seed, runs):
        res = run_async_engine(
            solver,
            b,
            tmax=max_cycles,
            rescomp=spec.rescomp,
            write=spec.write,
            criterion="criterion2",
            alpha=alpha,
            seed=s,
            checkpoints=checkpoints,
        )
        if res.diverged and not res.checkpoint_results:
            return None, float("nan")
        per_run.append({v: (rel, cor) for v, rel, cor in res.checkpoint_results})
    for v in checkpoints:
        rels = [r[v][0] for r in per_run if v in r]
        if len(rels) < len(per_run):
            break  # some run diverged before reaching this checkpoint
        if float(np.mean(rels)) < tol:
            cors = [r[v][1] for r in per_run]
            return v, float(np.mean(cors))
    return None, float("nan")


@dataclass
class Table1Entry:
    """One cell group of Table I: time / corrects / V-cycles (or dagger)."""

    label: str
    time: Optional[float]
    corrects: Optional[float]
    vcycles: Optional[int]

    @property
    def diverged(self) -> bool:
        return self.vcycles is None

    def cells(self) -> Tuple[object, object, object]:
        if self.diverged:
            return None, None, None
        return self.time, round(self.corrects or 0), self.vcycles


def table1_entry(
    spec: MethodSpec,
    hierarchy: Hierarchy,
    b: np.ndarray,
    smoother: str,
    nthreads: int = 272,
    tol: float = 1e-9,
    machine: Optional[MachineParams] = None,
    runs: int = 3,
    seed: int = 0,
    alpha: float = 0.1,
    max_cycles: int = 400,
    **solver_kw,
) -> Table1Entry:
    """Produce one Table-I entry: modeled time, corrects, V-cycles.

    Convergence (V-cycles, corrects) is measured with the sequential
    asynchronous engine; wall-clock is the machine model's estimate of
    running that many cycles at ``nthreads`` threads.
    """
    vcycles, corrects = cycles_to_tolerance(
        spec,
        hierarchy,
        b,
        smoother,
        tol=tol,
        runs=runs,
        seed=seed,
        alpha=alpha,
        max_cycles=max_cycles,
        **solver_kw,
    )
    if vcycles is None:
        return Table1Entry(spec.label, None, None, None)
    solver = build_solver(spec, hierarchy, smoother, **solver_kw)
    pm = PerfModel(machine or MachineParams())
    if spec.kind == "mult":
        time = pm.time_mult(solver, nthreads, vcycles)
    elif not spec.asynchronous:
        time = pm.time_sync_additive(solver, nthreads, vcycles, write=spec.write)
    else:
        time, model_counts = pm.time_async(
            solver,
            nthreads,
            vcycles,
            rescomp=spec.rescomp,
            write=spec.write,
            criterion="criterion2",
        )
        # Blend: convergence engine supplies corrects when available,
        # else the machine model's count estimate.
        if np.isnan(corrects):
            corrects = float(model_counts.mean())
    return Table1Entry(spec.label, time, corrects, vcycles)


def default_hierarchy(
    A,
    aggressive_levels: int = 2,
    strength_norm: str = "min",
    seed: int = 0,
    num_functions: int = 1,
) -> Hierarchy:
    """The paper's Table-I setup: HMIS + aggressive levels, classical interp."""
    return setup_hierarchy(
        A,
        SetupOptions(
            coarsen_type="hmis",
            aggressive_levels=aggressive_levels,
            interp_type="classical",
            strength_norm=strength_norm,
            seed=seed,
            num_functions=num_functions,
        ),
    )


def paper_hierarchy(name: str, A, aggressive_levels: int = 2, seed: int = 0) -> Hierarchy:
    """Per-test-set setup matching the paper's BoomerAMG configuration.

    Elasticity uses the absolute-value strength norm and unknown-based
    systems AMG (``num_functions=3``, BoomerAMG's systems option) with
    no aggressive coarsening — our scalar multipass interpolation does
    not survive aggressive coarsening on a vector problem (see
    EXPERIMENTS.md).  The scalar sets use the classical min-based norm.
    """
    if name == "mfem_elasticity":
        return default_hierarchy(
            A,
            aggressive_levels=0,
            strength_norm="abs",
            seed=seed,
            num_functions=3,
        )
    return default_hierarchy(A, aggressive_levels=aggressive_levels, seed=seed)
