"""Elastic membership and crash-recovery for the distributed simulator.

The paper's asynchronous model (Section III) tolerates arbitrarily
stale reads but assumes a *fixed* worker set.  This module removes that
assumption for the distributed simulator: a pool of ``nranks``
simulated ranks backs the ``ngrids`` grid processes, ranks join, stall,
crash and leave continuously (a :class:`ChurnPlan`), and a
:class:`MembershipManager` keeps the solve going — degraded if it must,
but converging.

Two layers are kept strictly apart:

**World physics** (what actually happens).  A crashed rank stops
computing and heartbeating *immediately* — its grid's compute capacity
drops the moment the churn event fires, and if the grid's whole team
dies its in-flight correction dies too (the simulator cancels the
pending ``done`` event).  Physics is recorded in the ``alive`` /
``stall_until`` arrays.

**Membership protocol** (what the survivors can know).  Nobody is told
about the crash.  Ranks heartbeat every ``heartbeat_interval`` of
simulated time; a rank silent for ``suspect_timeout`` becomes SUSPECT,
and a suspect silent for ``evict_timeout`` is evicted (declared DEAD).
Only *then* does the manager re-partition work over the believed-alive
ranks (incrementally, via :func:`repro.partition.partition_ranks`,
moving as few ranks as possible) and schedule checkpoint **handoffs**
for grids whose whole team changed.  A stalled rank that resumes
heartbeating before eviction is re-admitted (SUSPECT → ACTIVE, a
*recovery*) with its assignment intact.  Graceful departures
(``leave``) are announced, so they skip the suspect phase.

Degradation semantics: with fewer believed-alive ranks than grids,
:func:`~repro.partition.partition_ranks` parks the smallest-work grids
(zero ranks — no corrections from those grids until ranks return).
The solve *continues* and the result is recorded as **degraded**, not
failed (``DistributedResult.degraded``) — the asynchronous model needs
no barrier, so losing contributors only slows convergence, exactly the
robustness argument of the fault-tolerance literature (Coleman &
Sosonkina) transplanted onto the paper's method.

Determinism: membership draws (heartbeat jitter, retry-backoff jitter)
come from private streams spawned from ``ElasticityPolicy.seed`` —
never from the simulator's compute-jitter RNG or the network's
streams — and :func:`ChurnPlan.random` seeds its own generator, so
enabling elasticity never perturbs an existing seeded message trace,
and a churn-free elastic run is bit-identical to the plain simulator.

All membership state lives in vectorised per-rank numpy arrays and is
mutated **only** by :class:`MembershipManager` methods (enforced by
linter rule RPR008) — the scan over 1k+ ranks is a handful of array
ops, not a Python loop over ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..partition import partition_ranks
from ..resilience import FaultTelemetry

if TYPE_CHECKING:  # runtime import would cycle through repro.observe
    from ..observe.tracer import Tracer

__all__ = [
    "JOINING",
    "ACTIVE",
    "SUSPECT",
    "DEAD",
    "LEFT",
    "STATE_NAMES",
    "ChurnEvent",
    "ChurnPlan",
    "parse_churn_spec",
    "ElasticityPolicy",
    "MembershipManager",
]

# Protocol states (what membership believes about a rank).
JOINING = 0
ACTIVE = 1
SUSPECT = 2
DEAD = 3
LEFT = 4
STATE_NAMES: Tuple[str, ...] = ("joining", "active", "suspect", "dead", "left")

_CHURN_KINDS = ("crash", "stall", "join", "leave")


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership disturbance.

    ``kind`` is ``crash`` (silent fail-stop), ``stall`` (silent pause
    of ``duration`` simulated seconds, then resume), ``join`` (a cold
    rank arrives; ``rank`` is ignored — new ranks get fresh ids) or
    ``leave`` (announced graceful departure).
    """

    t: float
    kind: str
    rank: int = -1
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _CHURN_KINDS:
            raise ValueError(f"churn kind must be one of {_CHURN_KINDS}")
        if self.t < 0.0:
            raise ValueError("churn time must be non-negative")
        if self.kind == "stall" and self.duration <= 0.0:
            raise ValueError("stall churn needs a positive duration")
        if self.kind != "join" and self.rank < 0:
            raise ValueError(f"{self.kind} churn needs a target rank")


@dataclass(frozen=True)
class ChurnPlan:
    """A seeded schedule of :class:`ChurnEvent`\\ s for one run."""

    events: Tuple[ChurnEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def active(self) -> bool:
        return bool(self.events)

    def __bool__(self) -> bool:  # pragma: no cover - convenience alias
        return self.active

    @classmethod
    def random(
        cls,
        nranks: int,
        fraction: float,
        window: float,
        seed: int = 0,
        kind: str = "crash",
        duration: float = 0.0,
    ) -> "ChurnPlan":
        """Seeded plan hitting ``round(fraction * nranks)`` distinct
        ranks with ``kind`` events at uniform times in ``(0, window)``.

        Uses its own ``default_rng(seed)`` — independent of every
        simulator stream, so the same ``(nranks, fraction, window,
        seed)`` always yields the same plan.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if window <= 0.0:
            raise ValueError("window must be positive")
        if kind not in _CHURN_KINDS:
            raise ValueError(f"churn kind must be one of {_CHURN_KINDS}")
        rng = np.random.default_rng(seed)
        nhit = int(round(fraction * nranks))
        if kind == "join":
            ranks = np.full(nhit, -1, dtype=np.int64)
        else:
            nhit = min(nhit, nranks)
            ranks = rng.choice(nranks, size=nhit, replace=False)
        times = np.sort(rng.uniform(0.0, window, size=nhit))
        dur = duration if duration > 0.0 else (0.25 * window if kind == "stall" else 0.0)
        return cls(
            events=tuple(
                ChurnEvent(float(t), kind, int(r), dur) for t, r in zip(times, ranks)
            )
        )


def parse_churn_spec(spec: str) -> ChurnPlan:
    """Parse the CLI's compact churn spec into a :class:`ChurnPlan`.

    Same clause grammar as :func:`repro.resilience.parse_fault_spec`:
    ``;``-separated ``kind:rank@time`` clauses with ``,``-separated
    ``key=value`` options::

        crash:3@0.5
        stall:1@0.2,duration=0.3
        join:@1.0                     (rank slot empty — new ranks get fresh ids)
        leave:2@0.8
        random:0.1@2.0,seed=1,kind=crash

    ``random`` expands to :meth:`ChurnPlan.random` with the fraction
    before the ``@`` and the window after it.
    """
    events: List[ChurnEvent] = []
    for raw in spec.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        kind, _, rest = clause.partition(":")
        kind = kind.strip().lower()
        opts: Dict[str, str] = {}
        positional: Optional[str] = None
        for tok in filter(None, (t.strip() for t in rest.split(","))):
            if "=" in tok:
                key, _, val = tok.partition("=")
                opts[key.strip()] = val.strip()
            elif positional is None:
                positional = tok
            else:
                raise ValueError(f"cannot parse churn clause {clause!r}")
        try:
            if kind == "random":
                if positional is None or "@" not in positional:
                    raise ValueError("random churn needs fraction@window")
                if "nranks" not in opts:
                    raise ValueError("random churn needs nranks=<pool size>")
                frac_s, _, win_s = positional.partition("@")
                sub = ChurnPlan.random(
                    nranks=int(opts["nranks"]),
                    fraction=float(frac_s),
                    window=float(win_s),
                    seed=int(opts.get("seed", "0")),
                    kind=opts.get("kind", "crash"),
                    duration=float(opts.get("duration", "0")),
                )
                events.extend(sub.events)
            elif kind in _CHURN_KINDS:
                rank, t = -1, None
                if positional is not None and "@" in positional:
                    r_s, _, t_s = positional.partition("@")
                    if r_s:
                        rank = int(r_s)
                    t = float(t_s)
                if "rank" in opts:
                    rank = int(opts["rank"])
                if "t" in opts:
                    t = float(opts["t"])
                if t is None:
                    raise ValueError("missing @time")
                events.append(
                    ChurnEvent(t, kind, rank, float(opts.get("duration", "0")))
                )
            else:
                raise ValueError(
                    f"unknown churn kind {kind!r} "
                    "(known: crash, stall, join, leave, random)"
                )
        except ValueError as exc:
            if "churn" in str(exc):  # already contextualized
                raise
            raise ValueError(
                f"cannot parse churn clause {clause!r}: {exc}"
            ) from None
    return ChurnPlan(events=tuple(sorted(events, key=lambda e: (e.t, e.kind, e.rank))))


@dataclass(frozen=True)
class ElasticityPolicy:
    """Knobs of the membership protocol (all times simulated seconds).

    ``suspect_timeout`` / ``evict_timeout`` default to 3× / 6× the
    heartbeat interval.  ``heartbeat_jitter`` (fraction of the
    interval) and ``retry_jitter`` (fraction of the backoff) draw from
    private streams spawned from ``seed`` — zero means no draw at all,
    which is the bit-identity default.  ``handoff_bytes_factor`` scales
    the checkpoint transfer relative to one update message (a grid
    checkpoint is the replica vector, so 1.0 is the honest default).
    ``min_ranks`` ends the run as *stalled* (not degraded) if believed
    membership ever falls below it.
    """

    heartbeat_interval: float = 1e-3
    suspect_timeout: Optional[float] = None
    evict_timeout: Optional[float] = None
    heartbeat_jitter: float = 0.0
    retry_jitter: float = 0.0
    handoff_bytes_factor: float = 1.0
    min_ranks: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0.0:
            raise ValueError("heartbeat_interval must be positive")
        if self.suspect_timeout is None:
            object.__setattr__(self, "suspect_timeout", 3.0 * self.heartbeat_interval)
        if self.evict_timeout is None:
            object.__setattr__(self, "evict_timeout", 6.0 * self.heartbeat_interval)
        assert self.suspect_timeout is not None and self.evict_timeout is not None
        if not 0.0 < self.suspect_timeout < self.evict_timeout:
            raise ValueError("need 0 < suspect_timeout < evict_timeout")
        if self.heartbeat_jitter < 0.0 or self.retry_jitter < 0.0:
            raise ValueError("jitter fractions must be non-negative")
        if self.handoff_bytes_factor <= 0.0:
            raise ValueError("handoff_bytes_factor must be positive")
        if self.min_ranks < 1:
            raise ValueError("min_ranks must be >= 1")


class MembershipManager:
    """Single mutator of all liveness/membership state (rule RPR008).

    Holds two families of state:

    - **grid liveness** (``grid_down``): the legacy fail-stop flags the
      plain simulator path uses for injected grid crashes — present in
      every run so *all* liveness writes route through this class;
    - **rank membership** (elastic runs only): vectorised per-rank
      arrays — ``alive`` / ``stall_until`` are world physics,
      ``rank_state`` / ``last_heard`` are the protocol's belief, and
      ``rank_grid`` is the current work assignment.

    The simulator calls :meth:`apply_churn` when a churn event fires
    (physics), :meth:`scan` from the periodic heartbeat event
    (protocol), and :meth:`repartition` when a scan reports a believed
    membership change.
    """

    def __init__(
        self,
        ngrids: int,
        nranks: int = 0,
        work: Optional[np.ndarray] = None,
        policy: Optional[ElasticityPolicy] = None,
        telemetry: Optional[FaultTelemetry] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.ngrids = int(ngrids)
        self.nranks0 = int(nranks)
        self.policy = policy or ElasticityPolicy()
        self.telemetry = telemetry
        self.tracer = tracer
        self.grid_down = np.zeros(self.ngrids, dtype=bool)
        self.work = (
            np.asarray(work, dtype=np.float64)
            if work is not None
            else np.ones(self.ngrids)
        )
        n = self.nranks0
        self.alive = np.ones(n, dtype=bool)
        self.stall_until = np.zeros(n, dtype=np.float64)
        self.rank_state = np.full(n, ACTIVE, dtype=np.int8)
        self.last_heard = np.zeros(n, dtype=np.float64)
        self.rank_grid = np.full(n, -1, dtype=np.int64)
        streams = np.random.SeedSequence(self.policy.seed).spawn(2)
        self._rng_hb = np.random.default_rng(streams[0])
        self._rng_retry = np.random.default_rng(streams[1])
        self.below_min = False
        if n:
            self._assign(partition_ranks(self.work, n))

    # -- grid liveness (plain + elastic paths) -------------------------
    def mark_grid_down(self, g: int) -> None:
        self.grid_down[g] = True

    def mark_grid_up(self, g: int) -> None:
        self.grid_down[g] = False

    # -- world physics --------------------------------------------------
    def apply_churn(self, ev: ChurnEvent, t: float) -> bool:
        """Apply one churn event's *physics* at time ``t``.

        Returns True when believed membership changed immediately (only
        graceful ``leave`` — it is announced; crash/stall are silent
        and surface through :meth:`scan`).
        """
        if ev.kind == "join":
            r = self.alive.size
            self.alive = np.append(self.alive, True)
            self.stall_until = np.append(self.stall_until, 0.0)
            self.rank_state = np.append(self.rank_state, np.int8(JOINING))
            self.last_heard = np.append(self.last_heard, t)
            self.rank_grid = np.append(self.rank_grid, -1)
            self._trace("member", r, t, tag="joining")
            return False  # counted as a join when its first beat lands
        r = ev.rank
        if r >= self.alive.size or not self.alive[r]:
            return False  # target already gone — plan raced ahead of itself
        if ev.kind == "crash":
            self.alive[r] = False
            self._bump("rank_crashes")
            self._trace("member", r, t, a=float(self.rank_grid[r]), tag="crash")
            return False
        if ev.kind == "stall":
            self.stall_until[r] = max(self.stall_until[r], t + ev.duration)
            self._bump("rank_stalls")
            self._trace("member", r, t, a=float(ev.duration), tag="stall")
            return False
        # graceful leave: announced, so belief updates instantly
        self.alive[r] = False
        self.rank_state[r] = LEFT
        self.rank_grid[r] = -1
        self._bump("member_leaves")
        self._trace("member", r, t, tag="leave")
        return True

    # -- membership protocol -------------------------------------------
    def scan(self, t: float) -> bool:
        """One heartbeat sweep at time ``t``; returns True when the
        believed-alive set changed (caller should repartition).

        Physically-able ranks (alive, not mid-stall) beat; everyone
        else stays silent.  Transitions are pure array ops:
        JOINING→ACTIVE on first beat, ACTIVE→SUSPECT after
        ``suspect_timeout`` of silence, SUSPECT→ACTIVE on a fresh beat
        (recovery), SUSPECT→DEAD after ``evict_timeout``.
        """
        pol = self.policy
        beating = self.alive & (self.stall_until <= t)
        if np.any(beating):
            if pol.heartbeat_jitter > 0.0:
                # Beats arrive slightly early — jitter only smears the
                # detector's view, drawn from the private hb stream.
                lag = self._rng_hb.uniform(
                    0.0,
                    pol.heartbeat_jitter * pol.heartbeat_interval,
                    size=int(beating.sum()),
                )
                self.last_heard[beating] = t - lag
            else:
                self.last_heard[beating] = t
        changed = False
        silent_for = t - self.last_heard
        admitted = beating & (self.rank_state == JOINING)
        if np.any(admitted):
            self.rank_state[admitted] = ACTIVE
            self._bump("member_joins", int(admitted.sum()))
            for r in np.flatnonzero(admitted):
                self._trace("member", int(r), t, tag="join")
            changed = True
        recovered = beating & (self.rank_state == SUSPECT)
        if np.any(recovered):
            self.rank_state[recovered] = ACTIVE
            self._bump("member_recoveries", int(recovered.sum()))
            for r in np.flatnonzero(recovered):
                self._trace("member", int(r), t, a=float(self.rank_grid[r]), tag="recover")
            # assignment kept — a recovery alone does not repartition
        assert pol.suspect_timeout is not None and pol.evict_timeout is not None
        suspects = (
            (self.rank_state == ACTIVE) & ~beating & (silent_for > pol.suspect_timeout)
        )
        if np.any(suspects):
            self.rank_state[suspects] = SUSPECT
            self._bump("member_suspects", int(suspects.sum()))
            for r in np.flatnonzero(suspects):
                self._trace("member", int(r), t, a=float(self.rank_grid[r]), tag="suspect")
        evicted = (
            (self.rank_state == SUSPECT) & ~beating & (silent_for > pol.evict_timeout)
        )
        if np.any(evicted):
            self.rank_state[evicted] = DEAD
            self.rank_grid[evicted] = -1
            self._bump("member_evictions", int(evicted.sum()))
            for r in np.flatnonzero(evicted):
                self._trace("member", int(r), t, tag="evict")
            changed = True
        if self.believed_ranks() < self.policy.min_ranks:
            self.below_min = True
        return changed

    def repartition(self, t: float) -> Tuple[np.ndarray, List[int]]:
        """Re-spread believed-alive ranks over grids, incrementally.

        Returns ``(teams, handoff_grids)``: the new per-grid team
        sizes, and the grids whose team has **no surviving member** of
        the previous team (parked grids being revived, or fully-replaced
        teams) — those need a checkpoint handoff before computing.
        Assignments move as few ranks as possible: members beyond a
        grid's new quota are released (lowest rank id first), then
        deficits are filled in grid order from released + unassigned
        ranks.
        """
        assignable = (self.rank_state == ACTIVE) | (self.rank_state == SUSPECT)
        navail = int(assignable.sum())
        old_grid = self.rank_grid.copy()
        teams = partition_ranks(self.work, navail) if navail else np.zeros(
            self.ngrids, dtype=np.int64
        )
        # Release: unassign ranks that are no longer assignable, then trim
        # each grid's membership down to its new quota.
        self.rank_grid[~assignable] = -1
        pool: List[int] = list(np.flatnonzero(assignable & (self.rank_grid < 0)))
        for g in range(self.ngrids):
            members = np.flatnonzero(assignable & (self.rank_grid == g))
            excess = members.size - int(teams[g])
            if excess > 0:
                drop = members[:excess]
                self.rank_grid[drop] = -1
                pool.extend(int(r) for r in drop)
        pool.sort()
        # Fill deficits in grid order from the pool.
        for g in range(self.ngrids):
            members = np.flatnonzero(assignable & (self.rank_grid == g))
            deficit = int(teams[g]) - members.size
            for _ in range(deficit):
                self.rank_grid[pool.pop(0)] = g
        handoff: List[int] = []
        for g in range(self.ngrids):
            if teams[g] == 0:
                continue
            old_members = np.flatnonzero(old_grid == g)
            kept = old_members[
                assignable[old_members] & (self.rank_grid[old_members] == g)
            ]
            if kept.size == 0:
                handoff.append(g)
        self._bump("repartitions")
        self._trace(
            "member", -1, t, a=float(navail), b=float(np.count_nonzero(teams)),
            tag="repartition",
        )
        return teams, handoff

    # -- queries --------------------------------------------------------
    def capacity(self, g: int, t: float) -> int:
        """Physical compute capacity of grid ``g`` at time ``t``:
        assigned ranks that are alive and not mid-stall."""
        return int(
            np.count_nonzero(
                (self.rank_grid == g) & self.alive & (self.stall_until <= t)
            )
        )

    def capacities(self, t: float) -> np.ndarray:
        able = self.alive & (self.stall_until <= t) & (self.rank_grid >= 0)
        return np.bincount(
            self.rank_grid[able], minlength=self.ngrids
        ).astype(np.int64)

    def next_stall_end(self, g: int, t: float) -> Optional[float]:
        """Earliest future stall-end among grid ``g``'s alive members
        (None when no member is merely stalled)."""
        mine = (self.rank_grid == g) & self.alive & (self.stall_until > t)
        if not np.any(mine):
            return None
        return float(self.stall_until[mine].min())

    def staffed(self) -> np.ndarray:
        """Boolean per-grid mask: grid has at least one assigned rank.
        In plain (non-elastic) runs there are no ranks and every grid
        counts as staffed."""
        if self.rank_grid.size == 0:
            return np.ones(self.ngrids, dtype=bool)
        assigned = self.rank_grid[self.rank_grid >= 0]
        return np.bincount(assigned, minlength=self.ngrids) > 0

    def believed_ranks(self) -> int:
        """Ranks the protocol currently believes are usable."""
        return int(
            np.count_nonzero(
                (self.rank_state == ACTIVE) | (self.rank_state == SUSPECT)
            )
        )

    def census(self) -> Dict[str, int]:
        """Final membership head-count for ``DistributedResult.membership``."""
        out: Dict[str, int] = {"initial_ranks": self.nranks0}
        for code, name in enumerate(STATE_NAMES):
            out[name] = int(np.count_nonzero(self.rank_state == code))
        out["physically_alive"] = int(np.count_nonzero(self.alive))
        out["parked_grids"] = int(
            np.count_nonzero(np.bincount(
                self.rank_grid[self.rank_grid >= 0], minlength=self.ngrids
            ) == 0)
        ) if self.alive.size else 0
        return out

    def retry_backoff_factor(self) -> float:
        """Multiplier for one retransmission backoff — 1.0 (no draw)
        unless the policy enables retry jitter."""
        j = self.policy.retry_jitter
        if j <= 0.0:
            return 1.0
        return float(1.0 + j * self._rng_retry.uniform())

    # -- internals ------------------------------------------------------
    def _assign(self, teams: np.ndarray) -> None:
        """Initial deterministic assignment: rank ids in order, grid by
        grid (rank 0..teams[0]-1 → grid 0, and so on)."""
        bounds = np.cumsum(teams)
        start = 0
        for g in range(self.ngrids):
            self.rank_grid[start : int(bounds[g])] = g
            start = int(bounds[g])

    def _bump(self, counter: str, by: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.bump(counter, by)

    def _trace(self, kind: str, who: int, t: float, a: float = 0.0,
               b: float = 0.0, tag: str = "") -> None:
        if self.tracer is not None:
            self.tracer.record(kind, who, t, a, b, tag)
