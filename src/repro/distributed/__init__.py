"""Distributed-memory asynchronous multigrid (simulation).

The paper closes with: "Looking towards distributed memory parallelism,
we believe that the global-res approach is the most natural way to
implement a distributed asynchronous multigrid method since we do not
have to compute multiple fine grid residuals."  This package builds the
simulation machinery to *test* that claim:

- :mod:`repro.distributed.network` — a latency/bandwidth network model
  with per-link delays and a seeded jitter process.
- :mod:`repro.distributed.simulator` — a discrete-event simulator of
  distributed asynchronous additive multigrid: each grid lives on its
  own process; the fine-grid iterate/residual is replicated and
  updated by correction messages that arrive after a network delay.
  Both residual strategies are implemented:

  * ``global-res``: processes exchange *correction* messages; each
    process folds incoming corrections into its replica of the shared
    residual (one SpMV per message against the correction — cheap,
    single fine-grid residual, the paper's recommendation);
  * ``local-res``: processes exchange *iterate* updates and recompute
    their own fine residual before every correction (more computation,
    fresher data).

The simulator reports the same quantities as the shared-memory engines
(final relative residual, per-grid corrections, simulated wall-clock),
so benchmarks can put the paper's distributed-memory conjecture on the
same axes as its shared-memory results.

Elastic membership (:mod:`repro.distributed.elastic`) removes the
fixed-worker-set assumption: a pool of simulated ranks staffs the grid
processes, churn plans crash/stall/join/leave ranks mid-run, failures
are detected by heartbeat silence, and work is re-partitioned over the
survivors so the solve finishes *degraded* instead of failing.
"""

from .elastic import (
    ChurnEvent,
    ChurnPlan,
    ElasticityPolicy,
    MembershipManager,
    parse_churn_spec,
)
from .events import DedupIndex, IndexedEventQueue
from .network import NetworkModel
from .simulator import DistributedResult, simulate_distributed

__all__ = [
    "NetworkModel",
    "DistributedResult",
    "simulate_distributed",
    "ChurnEvent",
    "ChurnPlan",
    "ElasticityPolicy",
    "MembershipManager",
    "parse_churn_spec",
    "DedupIndex",
    "IndexedEventQueue",
]
