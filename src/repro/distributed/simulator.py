"""Discrete-event simulator of distributed asynchronous multigrid.

One process per grid.  Each process repeatedly:

1. reads its *replica* of the shared fine-grid state (a residual for
   ``global-res``, an iterate for ``local-res``),
2. computes its grid's correction (simulated duration = flops divided
   by the process's compute rate, with heterogeneity jitter),
3. applies the correction to its own replica and sends an update
   message to every other process (arrival = completion + link
   latency + size/bandwidth),
4. goes back to 1 — no synchronization anywhere.

Message payloads follow the two strategies of Section IV transplanted
to distributed memory:

- ``global-res`` (the paper's recommendation): the sender ships the
  residual increment ``-A e``; receivers fold it into their residual
  replica with one vector add.  No process ever recomputes a full
  fine-grid residual.
- ``local-res``: the sender ships the correction ``e``; receivers fold
  it into their iterate replica, and every process recomputes
  ``r = b - A x`` (one fine-grid SpMV) before each correction.

The *true* iterate accumulates every correction exactly (as in the
Section-III models), so the reported relative residual is exact; the
asynchrony lives in what each process *reads*.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.perfmodel import MachineParams
from ..linalg import two_norm
from ..partition import partition_threads
from .network import NetworkModel

__all__ = ["DistributedResult", "simulate_distributed"]

_STRATEGIES = ("global", "local")


@dataclass
class DistributedResult:
    """Outcome of a distributed asynchronous simulation."""

    x: np.ndarray
    rel_residual: float
    counts: np.ndarray
    wall_time: float
    messages: int
    strategy: str
    flops_total: float = 0.0
    dropped: int = 0
    """Messages lost in transit (``NetworkModel.drop_probability``)."""
    residual_trace: List[tuple] = field(default_factory=list)
    """``(sim_time, rel_residual)`` samples taken at each correction."""
    activity_trace: List[tuple] = field(default_factory=list)
    """``(grid, t_start, t_end)`` busy intervals — feed to
    :func:`repro.utils.ascii_timeline` to *see* the schedule."""

    @property
    def corrects(self) -> float:
        return float(self.counts.mean())


def simulate_distributed(
    solver,
    b: np.ndarray,
    tmax: int = 20,
    strategy: str = "global",
    network: Optional[NetworkModel] = None,
    machine: Optional[MachineParams] = None,
    nthreads_total: int = 64,
    criterion: str = "criterion1",
    seed: int = 0,
    track_trace: bool = False,
    max_events: int = 2_000_000,
) -> DistributedResult:
    """Simulate distributed asynchronous additive multigrid.

    Parameters
    ----------
    solver:
        An :class:`~repro.solvers.base.AdditiveMultigrid`.
    strategy:
        ``"global"`` (residual-increment messages) or ``"local"``
        (iterate messages + per-correction residual recomputation).
    network / machine:
        Cost models; defaults are a 1-us/10-GB/s network and the
        KNL-class machine of :class:`repro.core.perfmodel`.
    nthreads_total:
        Threads distributed over the grid processes proportionally to
        per-correction work (Section IV's partitioning).
    criterion:
        ``"criterion1"`` — each process stops after ``tmax`` own
        corrections; ``"criterion2"`` — processes keep correcting
        until every process reached ``tmax``.
    """
    if strategy not in _STRATEGIES:
        raise ValueError(f"strategy must be one of {_STRATEGIES}")
    if criterion not in ("criterion1", "criterion2"):
        raise ValueError("criterion must be criterion1 or criterion2")
    net = network or NetworkModel(seed=seed)
    mach = machine or MachineParams()
    rng = np.random.default_rng(seed)
    A = solver.A
    n = solver.n
    ngrids = solver.ngrids
    groups = partition_threads(solver.work_per_grid(), nthreads_total)
    rates = mach.flop_rate * groups.astype(np.float64)

    b = np.asarray(b, dtype=np.float64)
    nb = two_norm(b) or 1.0
    x_true = np.zeros(n)
    r0 = b.copy()
    if strategy == "global":
        replicas = [r0.copy() for _ in range(ngrids)]
    else:
        replicas = [np.zeros(n) for _ in range(ngrids)]

    counts = np.zeros(ngrids, dtype=np.int64)
    msg_bytes = 8.0 * n
    flops_total = 0.0
    messages = 0
    dropped = 0
    trace: List[tuple] = []

    def correction_duration(k: int) -> float:
        flops = solver.correction_flops(k)
        if strategy == "local":
            flops += solver.residual_flops()
        else:
            flops += 2.0 * A.nnz  # forming the -A e increment
        jit = 1.0 + abs(float(rng.normal(0.0, mach.jitter))) if mach.jitter else 1.0
        return flops / rates[k] * jit, flops

    def all_done() -> bool:
        return bool(np.all(counts >= tmax))

    # Event queue: (time, seq, kind, proc, payload)
    seq = itertools.count()
    heap: List[tuple] = []

    activity: List[tuple] = []

    def start_compute(k: int, t: float) -> None:
        if strategy == "global":
            r_in = replicas[k].copy()
        else:
            r_in = b - A @ replicas[k]
        e = solver.correction(k, r_in)
        dur, flops = correction_duration(k)
        heapq.heappush(heap, (t + dur, next(seq), "done", k, e))
        activity.append((k, t, t + dur))
        nonlocal flops_total
        flops_total += flops

    for k in range(ngrids):
        start_compute(k, 0.0)

    wall = 0.0
    events = 0
    while heap:
        t, _, kind, proc, payload = heapq.heappop(heap)
        wall = max(wall, t)
        events += 1
        if events > max_events:
            raise RuntimeError("distributed simulation exceeded event budget")
        if kind == "done":
            e = payload
            x_true += e
            counts[proc] += 1
            if track_trace:
                trace.append((t, two_norm(b - A @ x_true) / nb))
            if strategy == "global":
                dr = -(A @ e)
                replicas[proc] += dr
                out = dr
            else:
                replicas[proc] += e
                out = e
            for j in range(ngrids):
                if j == proc:
                    continue
                if net.dropped():
                    dropped += 1
                    continue
                arr = t + net.transfer_time(proc, j, msg_bytes)
                heapq.heappush(heap, (arr, next(seq), "msg", j, out))
                messages += 1
            keep_going = (
                counts[proc] < tmax
                if criterion == "criterion1"
                else not all_done()
            )
            if keep_going:
                start_compute(proc, t)
        else:  # msg
            replicas[proc] += payload

    rel = two_norm(b - A @ x_true) / nb
    return DistributedResult(
        x=x_true,
        rel_residual=float(rel),
        counts=counts,
        wall_time=wall,
        messages=messages,
        strategy=strategy,
        dropped=dropped,
        flops_total=flops_total,
        residual_trace=trace,
        activity_trace=activity,
    )
