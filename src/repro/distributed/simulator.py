"""Discrete-event simulator of distributed asynchronous multigrid.

One process per grid.  Each process repeatedly:

1. reads its *replica* of the shared fine-grid state (a residual for
   ``global-res``, an iterate for ``local-res``),
2. computes its grid's correction (simulated duration = flops divided
   by the process's compute rate, with heterogeneity jitter),
3. applies the correction to its own replica and sends an update
   message to every other process (arrival = completion + link
   latency + size/bandwidth),
4. goes back to 1 — no synchronization anywhere.

Message payloads follow the two strategies of Section IV transplanted
to distributed memory:

- ``global-res`` (the paper's recommendation): the sender ships the
  residual increment ``-A e``; receivers fold it into their residual
  replica with one vector add.  No process ever recomputes a full
  fine-grid residual.
- ``local-res``: the sender ships the correction ``e``; receivers fold
  it into their iterate replica, and every process recomputes
  ``r = b - A x`` (one fine-grid SpMV) before each correction.

The *true* iterate accumulates every correction exactly (as in the
Section-III models), so the reported relative residual is exact; the
asynchrony lives in what each process *reads*.

Faults and recovery are first-class events (``faults=`` /
``guard=``, see :mod:`repro.resilience`):

- a **fail-stop crash** removes a process from the simulation; with a
  guard, the heartbeat watchdog schedules a ``restart`` event
  (detection latency + restart delay) that re-syncs the replica from a
  peer (one message transfer) and resumes computing;
- a **dropped transmission** (sampled per attempt from the network's
  drop process plus the plan's extra loss) triggers **retransmission**
  events with exponential backoff up to ``max_retransmits``;
- **duplicated** deliveries are discarded by sequence-number dedup
  when the guard enables it — without it, a duplicated ``global-res``
  increment is applied twice and silently corrupts the replica;
- **corrupted corrections** (NaN/Inf/scaled entries) are screened by
  the guard before they touch the true iterate or any message.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from .. import kernels
from ..core.perfmodel import MachineParams
from ..linalg import two_norm
from ..partition import partition_threads
from ..resilience import FaultInjector, FaultPlan, FaultTelemetry, Guard, GuardPolicy
from .network import NetworkModel

if TYPE_CHECKING:  # runtime import would cycle through repro.observe
    from ..observe.tracer import Tracer, TraceSummary

__all__ = ["DistributedResult", "simulate_distributed"]

_STRATEGIES = ("global", "local")


@dataclass
class DistributedResult:
    """Outcome of a distributed asynchronous simulation."""

    x: np.ndarray
    rel_residual: float
    counts: np.ndarray
    wall_time: float
    messages: int
    strategy: str
    flops_total: float = 0.0
    dropped: int = 0
    """Transmissions lost in transit (network drop process plus any
    plan-level loss; retransmitted attempts that are dropped again
    count each time)."""
    diverged: bool = False
    stalled: bool = False
    """True when the run ended (event budget or drained queue) without
    every process reaching ``tmax`` — e.g. a crashed process with no
    restart budget."""
    telemetry: FaultTelemetry = field(default_factory=FaultTelemetry)
    """Injected-fault and guard-action counters (zero when fault-free)."""
    residual_trace: List[tuple] = field(default_factory=list)
    """``(sim_time, rel_residual)`` samples taken at each correction."""
    activity_trace: List[tuple] = field(default_factory=list)
    """``(grid, t_start, t_end)`` busy intervals — feed to
    :func:`repro.utils.ascii_timeline` to *see* the schedule."""
    trace_summary: Optional["TraceSummary"] = None
    """Compact digest of the recorded trace when the run was handed a
    :class:`~repro.observe.Tracer` (None otherwise)."""
    kernel_backend: str = "numpy"
    """Active :mod:`repro.kernels` backend the run executed with."""

    @property
    def corrects(self) -> float:
        return float(self.counts.mean())


def simulate_distributed(
    solver,
    b: np.ndarray,
    tmax: int = 20,
    strategy: str = "global",
    network: Optional[NetworkModel] = None,
    machine: Optional[MachineParams] = None,
    nthreads_total: int = 64,
    criterion: str = "criterion1",
    seed: int = 0,
    track_trace: bool = False,
    max_events: int = 2_000_000,
    divergence_threshold: float = 1e6,
    faults: Optional[FaultPlan] = None,
    guard: Optional[GuardPolicy] = None,
    tracer: Optional["Tracer"] = None,
) -> DistributedResult:
    """Simulate distributed asynchronous additive multigrid.

    Parameters
    ----------
    solver:
        An :class:`~repro.solvers.base.AdditiveMultigrid`.
    strategy:
        ``"global"`` (residual-increment messages) or ``"local"``
        (iterate messages + per-correction residual recomputation).
    network / machine:
        Cost models; defaults are a 1-us/10-GB/s network and the
        KNL-class machine of :class:`repro.core.perfmodel`.
    nthreads_total:
        Threads distributed over the grid processes proportionally to
        per-correction work (Section IV's partitioning).
    criterion:
        ``"criterion1"`` — each process stops after ``tmax`` own
        corrections; ``"criterion2"`` — processes keep correcting
        until every process reached ``tmax``.
    faults:
        Optional :class:`~repro.resilience.FaultPlan`; crash/stall
        times are simulated seconds, message faults apply per
        transmission.
    guard:
        Optional :class:`~repro.resilience.GuardPolicy`; enables
        correction screening, checkpoint/rollback of the true iterate,
        crash detection + restart (replica re-sync), retransmission
        with backoff, and duplicate suppression.
    tracer:
        Optional :class:`~repro.observe.Tracer` (use ``clock="sim"``).
        Event times are simulated seconds; message sends, deliveries
        and drops are recorded as ``msg`` events alongside the usual
        correction / staleness / guard / fault vocabulary, and the
        digest lands on ``result.trace_summary``.  Like the engine, a
        fixed seed reproduces the event stream exactly.
    """
    if strategy not in _STRATEGIES:
        raise ValueError(f"strategy must be one of {_STRATEGIES}")
    if criterion not in ("criterion1", "criterion2"):
        raise ValueError("criterion must be criterion1 or criterion2")
    net = network or NetworkModel(seed=seed)
    mach = machine or MachineParams()
    rng = np.random.default_rng(seed)
    A = solver.A
    n = solver.n
    ngrids = solver.ngrids
    groups = partition_threads(solver.work_per_grid(), nthreads_total)
    rates = mach.flop_rate * groups.astype(np.float64)

    b = np.asarray(b, dtype=np.float64)
    nb = two_norm(b) or 1.0
    x_true = np.zeros(n)
    r0 = b.copy()
    if strategy == "global":
        replicas = [r0.copy() for _ in range(ngrids)]
    else:
        replicas = [np.zeros(n) for _ in range(ngrids)]

    telemetry = FaultTelemetry()
    injector = (
        FaultInjector(faults, ngrids)
        if faults is not None and faults.active
        else None
    )
    grd = Guard(guard, nb, telemetry) if guard is not None else None

    counts = np.zeros(ngrids, dtype=np.int64)
    crashed = [False] * ngrids
    msg_bytes = 8.0 * n
    flops_total = 0.0
    messages = 0
    dropped = 0
    trace: List[tuple] = []

    def correction_duration(k: int) -> Tuple[float, float]:
        flops = solver.correction_flops(k)
        if strategy == "local":
            flops += solver.residual_flops()
        else:
            flops += 2.0 * A.nnz  # forming the -A e increment
        jit = 1.0 + abs(float(rng.normal(0.0, mach.jitter))) if mach.jitter else 1.0
        return flops / rates[k] * jit, flops

    def all_done() -> bool:
        return bool(np.all(counts >= tmax))

    # Event queue: (time, seq, kind, proc, payload)
    seq = itertools.count()
    msg_ids = itertools.count()
    heap: List[tuple] = []

    activity: List[tuple] = []
    # Sequence-number dedup (guard): message ids each process applied.
    seen: List[set] = [set() for _ in range(ngrids)]
    # Tracing state: commit epochs count "done" events on the true
    # iterate; a process's staleness is the epochs committed between
    # its replica read (start_compute) and its own commit.
    commit_epoch = 0
    last_read_epoch = [-1] * ngrids
    read_tag = "r" if strategy == "global" else "x"

    def transmit(src: int, dst: int, vec: np.ndarray, t: float, mid: int, attempt: int) -> None:
        """One transmission attempt; drops trigger retransmission when
        the guard allows, with exponential backoff."""
        nonlocal messages, dropped
        lost = net.dropped() or (injector is not None and injector.message_dropped())
        if lost:
            dropped += 1
            if tracer is not None:
                tracer.record("msg", dst, t, float(mid), float(src), "drop")
            if (
                grd is not None
                and guard.retransmit
                and attempt < guard.max_retransmits
            ):
                backoff = guard.retransmit_timeout * (2.0**attempt)
                heapq.heappush(
                    heap,
                    (t + backoff, next(seq), "retransmit", dst, (src, vec, mid, attempt + 1)),
                )
                telemetry.bump("retransmissions")
            else:
                telemetry.bump("messages_lost")
            return
        lat = net.transfer_time(src, dst, msg_bytes)
        if injector is not None:
            factor = injector.message_delay_factor()
            if factor is not None:
                lat *= factor
                telemetry.bump("messages_delayed")
        arr = t + lat
        heapq.heappush(heap, (arr, next(seq), "msg", dst, (src, mid, vec)))
        messages += 1
        if tracer is not None:
            tracer.record("msg", src, t, float(mid), float(dst), "send")
        if injector is not None and injector.message_duplicated():
            heapq.heappush(
                heap, (arr + net.link_latency(src, dst), next(seq), "msg", dst, (src, mid, vec))
            )
            telemetry.bump("messages_duplicated")

    def start_compute(k: int, t: float) -> None:
        if strategy == "global":
            r_in = replicas[k].copy()
        else:
            # Fused residual into the event loop's scratch vector: the
            # input is consumed synchronously by solver.correction (no
            # solver retains or aliases its residual argument), so the
            # buffer is free again by the next start_compute.
            r_in = kernels.range_residual(
                A, replicas[k], b, 0, n, out=kernels.scratch(n, slot=6)
            )
        last_read_epoch[k] = commit_epoch
        if tracer is not None:
            tracer.record("read", k, t, float(commit_epoch), 0.0, read_tag)
            tracer.record("correct_begin", k, t, float(counts[k]) + 1.0)
        e = solver.correction(k, r_in)
        dur, flops = correction_duration(k)
        if injector is not None:
            stall = injector.stall_due(k, int(counts[k]))
            if stall is not None:
                dur += float(stall)
                telemetry.bump("injected_stalls")
                if tracer is not None:
                    tracer.record("fault", k, t, float(stall), tag="stall")
        heapq.heappush(heap, (t + dur, next(seq), "done", k, e))
        activity.append((k, t, t + dur))
        nonlocal flops_total
        flops_total += flops

    def resync_replica(k: int) -> None:
        """Restart re-sync: fetch a consistent view of the current
        state (modeled as a checkpoint transfer from a peer)."""
        if strategy == "global":
            replicas[k] = b - A @ x_true
        else:
            replicas[k] = x_true.copy()

    for k in range(ngrids):
        start_compute(k, 0.0)

    # Cached zero correction for guard-rejected updates (read-only by
    # construction — it is added to the iterate and shipped in
    # messages, never written).
    zeros_e = np.zeros(n, dtype=np.float64) if grd is not None else None
    # Per-kernel attribution for traced runs.
    stats_were_on = False
    kstats0: dict = {}
    if tracer is not None:
        stats_were_on = kernels.enable_stats(True)
        kstats0 = kernels.stats()

    ckpt_every = guard.checkpoint_interval * ngrids if grd is not None else 0
    wall = 0.0
    events = 0
    diverged = False
    stalled = False
    while heap and not diverged:
        t, _, kind, proc, payload = heapq.heappop(heap)
        wall = max(wall, t)
        events += 1
        if events > max_events:
            if injector is not None:
                stalled = True
                break
            raise RuntimeError("distributed simulation exceeded event budget")
        if kind == "done":
            if crashed[proc]:
                continue  # stale event from before a crash (defensive)
            e = payload
            if injector is not None:
                e = injector.corrupt(e, telemetry)
            if grd is not None:
                screened = grd.screen(e)
                # A rejected correction is discarded outright: the
                # process just computes the next one from its replica.
                if screened is None:
                    assert zeros_e is not None
                    e = zeros_e
                else:
                    e = screened
            # The discrete-event loop is single-threaded: the true
            # iterate is only touched here, between events.
            x_true += e  # repro: noqa[RPR001] event-loop is the serialization point
            counts[proc] += 1
            commit_epoch += 1
            rel_now: Optional[float] = None
            if track_trace:
                rel_now = float(kernels.residual_norm(A, x_true, b) / nb)
                trace.append((t, rel_now))
            if tracer is not None:
                stal = (
                    float(commit_epoch - 1 - last_read_epoch[proc])
                    if last_read_epoch[proc] >= 0
                    else -1.0
                )
                tracer.record("correct_end", proc, t, float(counts[proc]), stal)
                tracer.record("write", proc, t, 0.0, stal, read_tag)
                # Residual snapshots ride on track_trace norms so that
                # tracing alone never adds an SpMV per commit.
                if rel_now is not None:
                    tracer.record("residual", proc, t, rel_now, 0.0, "global")
            if strategy == "global":
                dr = -(A @ e)
                replicas[proc] += dr
                out = dr
            else:
                replicas[proc] += e
                out = e
            for j in range(ngrids):
                if j == proc:
                    continue
                transmit(proc, j, out, t, next(msg_ids), attempt=0)
            # --- divergence detection (guarded runs roll back below) -
            m = float(np.abs(x_true).max()) if n else 0.0
            unhealthy = not np.isfinite(m) or m > divergence_threshold * max(nb, 1.0)
            # --- guard: periodic checkpoint / spike rollback ---------
            if ckpt_every and int(counts.sum()) % ckpt_every == 0:
                if rel_now is None:
                    rel_now = float(kernels.residual_norm(A, x_true, b) / nb)
                    if tracer is not None:
                        tracer.record("residual", proc, t, rel_now, 0.0, "global")
                action, x_restore = grd.checkpoint_or_rollback(x_true, rel_now)
                if tracer is not None and action != "none":
                    tracer.record("guard", proc, t, tag=action)
                if action == "rollback":
                    x_true = x_restore
                    for j in range(ngrids):
                        if not crashed[j]:
                            resync_replica(j)
                    unhealthy = False
            if unhealthy:
                recovered = False
                if grd is not None:
                    action, x_restore = grd.checkpoint_or_rollback(x_true, np.inf)
                    if action == "rollback":
                        if tracer is not None:
                            tracer.record("guard", proc, t, tag="rollback")
                        x_true = x_restore
                        for j in range(ngrids):
                            if not crashed[j]:
                                resync_replica(j)
                        recovered = True
                if not recovered:
                    diverged = True
                    continue
            # --- fail-stop crash at the correction boundary ----------
            if injector is not None and injector.crash_due(proc, int(counts[proc])):
                crashed[proc] = True
                telemetry.bump("injected_crashes")
                if tracer is not None:
                    tracer.record("fault", proc, t, tag="crash")
                if grd is not None and guard.watchdog and grd.try_restart():
                    # The heartbeat watchdog notices the silence after
                    # watchdog_timeout; the replacement comes up
                    # restart_delay later.
                    telemetry.bump("watchdog_detections")
                    t_up = t + guard.watchdog_timeout + guard.restart_delay
                    if tracer is not None:
                        tracer.record(
                            "guard", proc, t + guard.watchdog_timeout, tag="watchdog"
                        )
                    heapq.heappush(heap, (t_up, next(seq), "restart", proc, None))
                continue
            keep_going = (
                counts[proc] < tmax if criterion == "criterion1" else not all_done()
            )
            if keep_going:
                start_compute(proc, t)
        elif kind == "restart":
            crashed[proc] = False
            if tracer is not None:
                tracer.record("guard", proc, t, tag="restart")
            # Replica re-sync: one state transfer from a peer.
            peer = (proc + 1) % ngrids
            t_sync = t + net.transfer_time(peer, proc, msg_bytes)
            resync_replica(proc)
            seen[proc].clear()
            keep_going = (
                counts[proc] < tmax if criterion == "criterion1" else not all_done()
            )
            if keep_going:
                start_compute(proc, t_sync)
        elif kind == "retransmit":
            src, vec, mid, attempt = payload
            transmit(src, proc, vec, t, mid, attempt)
        else:  # msg
            if crashed[proc]:
                continue  # delivered to a dead process
            src, mid, vec = payload
            if grd is not None and guard.dedup_messages:
                if mid in seen[proc]:
                    telemetry.bump("duplicates_discarded")
                    if tracer is not None:
                        tracer.record("msg", proc, t, float(mid), float(src), "dup")
                    continue
                seen[proc].add(mid)
            if tracer is not None:
                tracer.record("msg", proc, t, float(mid), float(src), "recv")
            replicas[proc] += vec

    rel = kernels.residual_norm(A, x_true, b) / nb
    diverged = bool(diverged or not np.isfinite(rel) or rel > divergence_threshold)
    if injector is not None and not diverged and not all_done():
        stalled = True
    stalled = stalled and not diverged
    if tracer is not None:
        for kname, (calls, secs) in sorted(kernels.stats_delta(kstats0).items()):
            tracer.record("kernel", -1, wall, float(secs), float(calls), kname)
        kernels.enable_stats(stats_were_on)
    return DistributedResult(
        x=x_true,
        rel_residual=float(rel),
        counts=counts,
        wall_time=wall,
        messages=messages,
        strategy=strategy,
        dropped=dropped,
        diverged=diverged,
        stalled=stalled,
        telemetry=telemetry,
        flops_total=flops_total,
        residual_trace=trace,
        activity_trace=activity,
        trace_summary=tracer.summary() if tracer is not None else None,
        kernel_backend=kernels.current_backend(),
    )
