"""Discrete-event simulator of distributed asynchronous multigrid.

One process per grid.  Each process repeatedly:

1. reads its *replica* of the shared fine-grid state (a residual for
   ``global-res``, an iterate for ``local-res``),
2. computes its grid's correction (simulated duration = flops divided
   by the process's compute rate, with heterogeneity jitter),
3. applies the correction to its own replica and sends an update
   message to every other process (arrival = completion + link
   latency + size/bandwidth),
4. goes back to 1 — no synchronization anywhere.

Message payloads follow the two strategies of Section IV transplanted
to distributed memory:

- ``global-res`` (the paper's recommendation): the sender ships the
  residual increment ``-A e``; receivers fold it into their residual
  replica with one vector add.  No process ever recomputes a full
  fine-grid residual.
- ``local-res``: the sender ships the correction ``e``; receivers fold
  it into their iterate replica, and every process recomputes
  ``r = b - A x`` (one fine-grid SpMV) before each correction.

The *true* iterate accumulates every correction exactly (as in the
Section-III models), so the reported relative residual is exact; the
asynchrony lives in what each process *reads*.

Faults and recovery are first-class events (``faults=`` /
``guard=``, see :mod:`repro.resilience`):

- a **fail-stop crash** removes a process from the simulation; with a
  guard, the heartbeat watchdog schedules a ``restart`` event
  (detection latency + restart delay) that re-syncs the replica from a
  peer (one message transfer) and resumes computing;
- a **dropped transmission** (sampled per attempt from the network's
  drop process plus the plan's extra loss) triggers **retransmission**
  events with exponential backoff up to ``max_retransmits``;
- **duplicated** deliveries are discarded by sequence-number dedup
  when the guard enables it — without it, a duplicated ``global-res``
  increment is applied twice and silently corrupts the replica;
- **corrupted corrections** (NaN/Inf/scaled entries) are screened by
  the guard before they touch the true iterate or any message.

Elastic membership (``elastic=`` / ``churn=`` / ``nranks=``, see
:mod:`repro.distributed.elastic`) replaces the fixed worker set with a
pool of ``nranks`` simulated ranks backing the grid processes.  Churn
events (rank crash / stall / cold join / graceful leave) are
first-class simulator events; failures are detected by heartbeat
silence (never by omniscient crash knowledge), work is re-partitioned
incrementally over the believed-alive ranks, revived grids receive a
checkpoint **handoff**, and a solve that lost capacity finishes
**degraded** rather than failed.  The event loop runs on an
:class:`~repro.distributed.events.IndexedEventQueue` (O(1) interior
cancellation — a dead team's in-flight correction dies with it) and a
:class:`~repro.distributed.events.DedupIndex`; per-rank state is
vectorised numpy, so churn runs at 1k+ ranks complete in seconds.  A
churn-free elastic run is bit-identical to a plain run under the same
seeds: membership draws come from private streams and heartbeat scans
touch neither the compute-jitter RNG nor the event budget.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from .. import kernels
from ..core.perfmodel import MachineParams
from ..linalg import two_norm
from ..partition import partition_threads
from ..resilience import FaultInjector, FaultPlan, FaultTelemetry, Guard, GuardPolicy
from .elastic import ChurnPlan, ElasticityPolicy, MembershipManager
from .events import DedupIndex, EventHandle, IndexedEventQueue
from .network import NetworkModel

if TYPE_CHECKING:  # runtime import would cycle through repro.observe
    from ..observe.live import LiveConfig, LiveSummary
    from ..observe.tracer import Tracer, TraceSummary

__all__ = ["DistributedResult", "simulate_distributed"]

_STRATEGIES = ("global", "local")

# Kinds that represent solve/recovery activity and therefore advance the
# reported wall clock.  Heartbeat scans and not-yet-applied churn are
# bookkeeping: a churn event scheduled long after convergence must not
# inflate ``wall_time``.
_WALL_KINDS = frozenset(("done", "msg", "restart", "retransmit", "sync"))


@dataclass
class DistributedResult:
    """Outcome of a distributed asynchronous simulation."""

    x: np.ndarray
    rel_residual: float
    counts: np.ndarray
    wall_time: float
    messages: int
    strategy: str
    flops_total: float = 0.0
    dropped: int = 0
    """Transmissions lost in transit (network drop process plus any
    plan-level loss; retransmitted attempts that are dropped again
    count each time)."""
    diverged: bool = False
    stalled: bool = False
    """True when the run ended (event budget or drained queue) without
    every process reaching ``tmax`` — e.g. a crashed process with no
    restart budget."""
    degraded: bool = False
    """Elastic runs only: the solve *finished* (converged residual, no
    divergence, no stall) but at reduced strength — believed membership
    ended below the initial rank pool and/or parked grids contributed
    fewer than ``tmax`` corrections.  Degraded is success with a
    footnote, not failure."""
    nranks: int = 0
    """Initial simulated rank-pool size (0 for non-elastic runs)."""
    telemetry: FaultTelemetry = field(default_factory=FaultTelemetry)
    """Injected-fault and guard-action counters (zero when fault-free)."""
    membership: Dict[str, int] = field(default_factory=dict)
    """Final membership census of an elastic run (empty otherwise):
    per-state head-counts plus ``initial_ranks`` / ``physically_alive``
    / ``parked_grids``."""
    residual_trace: List[tuple] = field(default_factory=list)
    """``(sim_time, rel_residual)`` samples taken at each correction."""
    activity_trace: List[tuple] = field(default_factory=list)
    """``(grid, t_start, t_end)`` busy intervals — feed to
    :func:`repro.utils.ascii_timeline` to *see* the schedule."""
    trace_summary: Optional["TraceSummary"] = None
    """Compact digest of the recorded trace when the run was handed a
    :class:`~repro.observe.Tracer` (None otherwise)."""
    kernel_backend: str = "numpy"
    """Active :mod:`repro.kernels` backend the run executed with."""
    live_summary: Optional["LiveSummary"] = None
    """Live-telemetry digest (snapshots, alerts, profile) when the run
    was configured with ``live=LiveConfig(...)`` (None otherwise)."""

    @property
    def corrects(self) -> float:
        return float(self.counts.mean())


def simulate_distributed(
    solver,
    b: np.ndarray,
    tmax: int = 20,
    strategy: str = "global",
    network: Optional[NetworkModel] = None,
    machine: Optional[MachineParams] = None,
    nthreads_total: int = 64,
    criterion: str = "criterion1",
    seed: int = 0,
    track_trace: bool = False,
    max_events: int = 2_000_000,
    divergence_threshold: float = 1e6,
    faults: Optional[FaultPlan] = None,
    guard: Optional[GuardPolicy] = None,
    tracer: Optional["Tracer"] = None,
    live: Optional["LiveConfig"] = None,
    elastic: Optional[ElasticityPolicy] = None,
    churn: Optional[ChurnPlan] = None,
    nranks: Optional[int] = None,
) -> DistributedResult:
    """Simulate distributed asynchronous additive multigrid.

    Parameters
    ----------
    solver:
        An :class:`~repro.solvers.base.AdditiveMultigrid`.
    strategy:
        ``"global"`` (residual-increment messages) or ``"local"``
        (iterate messages + per-correction residual recomputation).
    network / machine:
        Cost models; defaults are a 1-us/10-GB/s network and the
        KNL-class machine of :class:`repro.core.perfmodel`.
    nthreads_total:
        Threads distributed over the grid processes proportionally to
        per-correction work (Section IV's partitioning).
    criterion:
        ``"criterion1"`` — each process stops after ``tmax`` own
        corrections; ``"criterion2"`` — processes keep correcting
        until every process reached ``tmax`` (elastic runs exempt
        *parked* grids, else a churn loss would hang the run).
    faults:
        Optional :class:`~repro.resilience.FaultPlan`; crash/stall
        times are simulated seconds, message faults apply per
        transmission.
    guard:
        Optional :class:`~repro.resilience.GuardPolicy`; enables
        correction screening, checkpoint/rollback of the true iterate,
        crash detection + restart (replica re-sync), retransmission
        with backoff, and duplicate suppression.
    tracer:
        Optional :class:`~repro.observe.Tracer` (use ``clock="sim"``).
        Event times are simulated seconds; message sends, deliveries
        and drops are recorded as ``msg`` events alongside the usual
        correction / staleness / guard / fault vocabulary, and the
        digest lands on ``result.trace_summary``.  Like the engine, a
        fixed seed reproduces the event stream exactly.
    live:
        Optional :class:`~repro.observe.live.LiveConfig`.  Runs the
        streaming snapshot collector alongside the simulation; implies
        tracing (a ``clock="sim"`` tracer is created when none was
        given) and ``track_trace``.  Snapshots additionally carry the
        event-queue depth and (elastic runs) the live membership
        census.  The collector only reads, so results are unchanged;
        an ``alert_stop`` alert ends the run at the next event pop
        (reported as ``stalled``).  Digest lands on
        ``result.live_summary``.
    elastic / churn / nranks:
        Elastic membership (see :mod:`repro.distributed.elastic`).
        Passing any of the three enables the rank-pool model:
        ``nranks`` simulated ranks (default ``nthreads_total``) staff
        the grid processes via :func:`repro.partition.partition_ranks`;
        ``churn`` schedules rank crash/stall/join/leave events; the
        :class:`~repro.distributed.elastic.ElasticityPolicy` sets
        heartbeat cadence and suspicion/eviction timeouts.  Without
        churn the elastic run is bit-identical to a plain run.
    """
    if strategy not in _STRATEGIES:
        raise ValueError(f"strategy must be one of {_STRATEGIES}")
    if criterion not in ("criterion1", "criterion2"):
        raise ValueError("criterion must be criterion1 or criterion2")
    if live is not None:
        if tracer is None:
            from ..observe.tracer import Tracer as _Tracer

            tracer = _Tracer(clock="sim")
        track_trace = True  # detectors need residual events
    net = network or NetworkModel(seed=seed)
    mach = machine or MachineParams()
    rng = np.random.default_rng(seed)
    A = solver.A
    n = solver.n
    ngrids = solver.ngrids
    groups = partition_threads(solver.work_per_grid(), nthreads_total)
    rates = mach.flop_rate * groups.astype(np.float64)

    elastic_on = (
        elastic is not None or nranks is not None or (churn is not None and churn.active)
    )
    pol = elastic if elastic is not None else ElasticityPolicy(seed=seed)
    nranks_val = int(nranks) if nranks is not None else nthreads_total
    if elastic_on and nranks_val < 1:
        raise ValueError("nranks must be >= 1")

    b = np.asarray(b, dtype=np.float64)
    nb = two_norm(b) or 1.0
    x_true = np.zeros(n)
    r0 = b.copy()
    if strategy == "global":
        replicas = [r0.copy() for _ in range(ngrids)]
    else:
        replicas = [np.zeros(n) for _ in range(ngrids)]

    telemetry = FaultTelemetry()
    injector = (
        FaultInjector(faults, ngrids)
        if faults is not None and faults.active
        else None
    )
    grd = Guard(guard, nb, telemetry) if guard is not None else None
    # All liveness state — the plain path's grid crash flags and the
    # elastic path's per-rank membership arrays — lives behind the
    # MembershipManager (sole mutator; linter rule RPR008).
    mm = MembershipManager(
        ngrids,
        nranks=nranks_val if elastic_on else 0,
        work=solver.work_per_grid() if elastic_on else None,
        policy=pol,
        telemetry=telemetry,
        tracer=tracer,
    )

    counts = np.zeros(ngrids, dtype=np.int64)
    msg_bytes = 8.0 * n
    flops_total = 0.0
    messages = 0
    dropped = 0
    trace: List[tuple] = []

    def correction_duration(k: int, t: float) -> Tuple[float, float]:
        flops = solver.correction_flops(k)
        if strategy == "local":
            flops += solver.residual_flops()
        else:
            flops += 2.0 * A.nnz  # forming the -A e increment
        jit = 1.0 + abs(float(rng.normal(0.0, mach.jitter))) if mach.jitter else 1.0
        # Elastic rate = one rank-worth of throughput per live, unstalled
        # team member; churn-free this equals the static partition, so
        # the computed duration is bit-identical to the plain path.
        rate = mach.flop_rate * float(mm.capacity(k, t)) if elastic_on else rates[k]
        return flops / rate * jit, flops

    def all_done() -> bool:
        if elastic_on:
            # Parked grids (no assigned ranks) cannot correct; waiting
            # on them would hang criterion2 forever after a churn loss.
            return bool(np.all((counts >= tmax) | ~mm.staffed()))
        return bool(np.all(counts >= tmax))

    q = IndexedEventQueue()
    msg_ids = itertools.count()

    activity: List[tuple] = []
    # Sequence-number dedup (guard): message ids each process applied.
    dedup = DedupIndex(ngrids)
    # In-flight "done" event handle per grid — cancelled when churn
    # kills the whole team backing the grid mid-correction.
    inflight: List[Optional[EventHandle]] = [None] * ngrids
    # Tracing state: commit epochs count "done" events on the true
    # iterate; a process's staleness is the epochs committed between
    # its replica read (start_compute) and its own commit.
    commit_epoch = 0
    last_read_epoch = [-1] * ngrids
    read_tag = "r" if strategy == "global" else "x"

    def transmit(src: int, dst: int, vec: np.ndarray, t: float, mid: int, attempt: int) -> None:
        """One transmission attempt; drops trigger retransmission when
        the guard allows, with exponential backoff."""
        nonlocal messages, dropped
        telemetry.bump("messages_sent")
        lost = net.dropped() or (injector is not None and injector.message_dropped())
        if lost:
            dropped += 1
            telemetry.bump("messages_dropped")
            if tracer is not None:
                tracer.record("msg", dst, t, float(mid), float(src), "drop")
            if (
                grd is not None
                and guard.retransmit
                and attempt < guard.max_retransmits
            ):
                backoff = guard.retransmit_timeout * (2.0**attempt)
                if elastic_on:
                    backoff *= mm.retry_backoff_factor()
                q.push(t + backoff, "retransmit", dst, (src, vec, mid, attempt + 1))
                telemetry.bump("retransmissions")
                if tracer is not None:
                    tracer.record(
                        "retry", dst, t, float(mid), backoff, f"a{attempt + 1}"
                    )
            else:
                telemetry.bump("messages_lost")
            return
        lat = net.transfer_time(src, dst, msg_bytes)
        if injector is not None:
            factor = injector.message_delay_factor()
            if factor is not None:
                lat *= factor
                telemetry.bump("messages_delayed")
        arr = t + lat
        q.push(arr, "msg", dst, (src, mid, vec))
        messages += 1
        telemetry.bump("messages_delivered")
        telemetry.record_delivery(attempt + 1)
        if tracer is not None:
            tracer.record("msg", src, t, float(mid), float(dst), "send")
        if injector is not None and injector.message_duplicated():
            q.push(arr + net.link_latency(src, dst), "msg", dst, (src, mid, vec))
            telemetry.bump("messages_duplicated")

    def start_compute(k: int, t: float) -> None:
        if elastic_on and mm.capacity(k, t) == 0:
            # No live, unstalled rank backs this grid right now.  If
            # members are merely stalled, retry when the first returns;
            # a fully-dead team waits for a repartition handoff.
            nse = mm.next_stall_end(k, t)
            if nse is not None:
                q.push(nse, "wake", k, None)
            return
        if strategy == "global":
            r_in = replicas[k].copy()
        else:
            # Fused residual into the event loop's scratch vector: the
            # input is consumed synchronously by solver.correction (no
            # solver retains or aliases its residual argument), so the
            # buffer is free again by the next start_compute.
            r_in = kernels.range_residual(
                A, replicas[k], b, 0, n, out=kernels.scratch(n, slot=6)
            )
        last_read_epoch[k] = commit_epoch
        if tracer is not None:
            tracer.record("read", k, t, float(commit_epoch), 0.0, read_tag)
            tracer.record("correct_begin", k, t, float(counts[k]) + 1.0)
        e = solver.correction(k, r_in)
        dur, flops = correction_duration(k, t)
        if injector is not None:
            stall = injector.stall_due(k, int(counts[k]))
            if stall is not None:
                dur += float(stall)
                telemetry.bump("injected_stalls")
                if tracer is not None:
                    tracer.record("fault", k, t, float(stall), tag="stall")
        inflight[k] = q.push(t + dur, "done", k, e)
        activity.append((k, t, t + dur))
        nonlocal flops_total
        flops_total += flops

    def resync_replica(k: int) -> None:
        """Restart/handoff re-sync: fetch a consistent view of the
        current state (modeled as a checkpoint transfer from a peer)."""
        if strategy == "global":
            replicas[k] = b - A @ x_true
        else:
            replicas[k] = x_true.copy()

    def do_repartition(t: float) -> None:
        """Re-spread believed membership; cancel work on grids that
        lost their whole team and schedule checkpoint handoffs for
        grids gaining a fresh one."""
        teams, handoffs = mm.repartition(t)
        for g in range(ngrids):
            if teams[g] == 0 and inflight[g] is not None:
                q.cancel(inflight[g])
                inflight[g] = None
        for g in handoffs:
            if mm.grid_down[g]:
                continue
            peer = (g + 1) % ngrids
            dt = net.transfer_time(peer, g, msg_bytes * pol.handoff_bytes_factor)
            telemetry.bump("handoffs")
            if tracer is not None:
                tracer.record("member", g, t, dt, 0.0, "handoff")
            q.push(t + dt, "sync", g, None)

    for k in range(ngrids):
        start_compute(k, 0.0)
    if churn is not None:
        for ev in churn.events:
            q.push(ev.t, "churn", ev.rank, ev)
    if elastic_on:
        q.push(pol.heartbeat_interval, "hb", -1, None)

    # Cached zero correction for guard-rejected updates (read-only by
    # construction — it is added to the iterate and shipped in
    # messages, never written).
    zeros_e = np.zeros(n, dtype=np.float64) if grd is not None else None
    # Per-kernel attribution for traced runs.
    stats_were_on = False
    kstats0: dict = {}
    if tracer is not None:
        stats_were_on = kernels.enable_stats(True)
        kstats0 = kernels.stats()

    live_session = None
    if live is not None:
        from ..observe.live import start_live

        assert tracer is not None
        live_session = start_live(live, tracer, backend="distributed")
        # Queue depth + live membership census ride on every snapshot.
        live_session.collector.queue_depth_fn = lambda: float(len(q))
        if elastic_on:
            live_session.collector.membership_fn = mm.census

    ckpt_every = guard.checkpoint_interval * ngrids if grd is not None else 0
    wall = 0.0
    events = 0
    diverged = False
    stalled = False
    while q and not diverged:
        if live_session is not None and live_session.stop_requested:
            stalled = True
            break
        t, kind, proc, payload = q.pop()
        if kind in _WALL_KINDS:
            wall = max(wall, t)
        if kind != "hb":
            # Heartbeat scans are membership bookkeeping, not solve
            # events: exempting them keeps the budget — and therefore a
            # churn-free elastic run — identical to the plain path.
            events += 1
        if events > max_events:
            if injector is not None or elastic_on:
                stalled = True
                break
            raise RuntimeError("distributed simulation exceeded event budget")
        if kind == "done":
            inflight[proc] = None
            if mm.grid_down[proc]:
                continue  # stale event from before a crash (defensive)
            e = payload
            if injector is not None:
                e = injector.corrupt(e, telemetry)
            if grd is not None:
                screened = grd.screen(e)
                # A rejected correction is discarded outright: the
                # process just computes the next one from its replica.
                if screened is None:
                    assert zeros_e is not None
                    e = zeros_e
                else:
                    e = screened
            # The discrete-event loop is single-threaded: the true
            # iterate is only touched here, between events.
            x_true += e  # repro: noqa[RPR001] event-loop is the serialization point
            counts[proc] += 1
            commit_epoch += 1
            rel_now: Optional[float] = None
            if track_trace:
                rel_now = float(kernels.residual_norm(A, x_true, b) / nb)
                trace.append((t, rel_now))
            if tracer is not None:
                stal = (
                    float(commit_epoch - 1 - last_read_epoch[proc])
                    if last_read_epoch[proc] >= 0
                    else -1.0
                )
                tracer.record("correct_end", proc, t, float(counts[proc]), stal)
                tracer.record("write", proc, t, 0.0, stal, read_tag)
                # Residual snapshots ride on track_trace norms so that
                # tracing alone never adds an SpMV per commit.
                if rel_now is not None:
                    tracer.record("residual", proc, t, rel_now, 0.0, "global")
            if strategy == "global":
                dr = -(A @ e)
                replicas[proc] += dr
                out = dr
            else:
                replicas[proc] += e
                out = e
            for j in range(ngrids):
                if j == proc:
                    continue
                transmit(proc, j, out, t, next(msg_ids), attempt=0)
            # --- divergence detection (guarded runs roll back below) -
            m = float(np.abs(x_true).max()) if n else 0.0
            unhealthy = not np.isfinite(m) or m > divergence_threshold * max(nb, 1.0)
            # --- guard: periodic checkpoint / spike rollback ---------
            if ckpt_every and int(counts.sum()) % ckpt_every == 0:
                if rel_now is None:
                    rel_now = float(kernels.residual_norm(A, x_true, b) / nb)
                    if tracer is not None:
                        tracer.record("residual", proc, t, rel_now, 0.0, "global")
                action, x_restore = grd.checkpoint_or_rollback(x_true, rel_now)
                if tracer is not None and action != "none":
                    tracer.record("guard", proc, t, tag=action)
                if action == "rollback":
                    x_true = x_restore
                    for j in range(ngrids):
                        if not mm.grid_down[j]:
                            resync_replica(j)
                    unhealthy = False
            if unhealthy:
                recovered = False
                if grd is not None:
                    action, x_restore = grd.checkpoint_or_rollback(x_true, np.inf)
                    if action == "rollback":
                        if tracer is not None:
                            tracer.record("guard", proc, t, tag="rollback")
                        x_true = x_restore
                        for j in range(ngrids):
                            if not mm.grid_down[j]:
                                resync_replica(j)
                        recovered = True
                if not recovered:
                    diverged = True
                    continue
            # --- fail-stop crash at the correction boundary ----------
            if injector is not None and injector.crash_due(proc, int(counts[proc])):
                mm.mark_grid_down(proc)
                telemetry.bump("injected_crashes")
                if tracer is not None:
                    tracer.record("fault", proc, t, tag="crash")
                if grd is not None and guard.watchdog and grd.try_restart():
                    # The heartbeat watchdog notices the silence after
                    # watchdog_timeout; the replacement comes up
                    # restart_delay later.
                    telemetry.bump("watchdog_detections")
                    t_up = t + guard.watchdog_timeout + guard.restart_delay
                    if tracer is not None:
                        tracer.record(
                            "guard", proc, t + guard.watchdog_timeout, tag="watchdog"
                        )
                    q.push(t_up, "restart", proc, None)
                continue
            keep_going = (
                counts[proc] < tmax if criterion == "criterion1" else not all_done()
            )
            if keep_going:
                start_compute(proc, t)
        elif kind == "restart":
            mm.mark_grid_up(proc)
            if tracer is not None:
                tracer.record("guard", proc, t, tag="restart")
            # Replica re-sync: one state transfer from a peer.
            peer = (proc + 1) % ngrids
            t_sync = t + net.transfer_time(peer, proc, msg_bytes)
            resync_replica(proc)
            dedup.clear_rank(proc)
            keep_going = (
                counts[proc] < tmax if criterion == "criterion1" else not all_done()
            )
            if keep_going:
                start_compute(proc, t_sync)
        elif kind == "retransmit":
            src, vec, mid, attempt = payload
            transmit(src, proc, vec, t, mid, attempt)
        elif kind == "churn":
            ev = payload
            g_prev = (
                int(mm.rank_grid[ev.rank])
                if 0 <= ev.rank < mm.rank_grid.size
                else -1
            )
            changed = mm.apply_churn(ev, t)
            if (
                ev.kind in ("crash", "leave")
                and g_prev >= 0
                and mm.capacity(g_prev, t) == 0
            ):
                # The whole team backing g_prev is gone — its in-flight
                # correction dies with it (this is the cancellation the
                # indexed queue exists for).  Survivors merely stalled
                # get a wake-up at the earliest stall end.
                if inflight[g_prev] is not None:
                    q.cancel(inflight[g_prev])
                    inflight[g_prev] = None
                nse = mm.next_stall_end(g_prev, t)
                if nse is not None:
                    q.push(nse, "wake", g_prev, None)
            if changed:  # announced (graceful) departures repartition now
                do_repartition(t)
        elif kind == "hb":
            if mm.scan(t):
                do_repartition(t)
            if mm.below_min:
                stalled = True
                break
            if q.pending() - q.pending("hb") > 0:
                # Keep scanning only while solve/churn events remain;
                # otherwise let the queue drain so the run terminates.
                q.push(t + pol.heartbeat_interval, "hb", -1, None)
        elif kind == "wake":
            if mm.grid_down[proc] or inflight[proc] is not None:
                continue
            keep_going = (
                counts[proc] < tmax if criterion == "criterion1" else not all_done()
            )
            if keep_going:
                start_compute(proc, t)
        elif kind == "sync":
            # Checkpoint handoff landed: the grid's fresh team starts
            # from a consistent snapshot; old message ids are moot.
            if mm.grid_down[proc] or inflight[proc] is not None:
                continue
            resync_replica(proc)
            dedup.clear_rank(proc)
            if tracer is not None:
                tracer.record("guard", proc, t, tag="restart")
            keep_going = (
                counts[proc] < tmax if criterion == "criterion1" else not all_done()
            )
            if keep_going:
                start_compute(proc, t)
        else:  # msg
            if mm.grid_down[proc]:
                continue  # delivered to a dead process
            src, mid, vec = payload
            if grd is not None and guard.dedup_messages:
                if not dedup.first_delivery(proc, mid):
                    telemetry.bump("duplicates_discarded")
                    if tracer is not None:
                        tracer.record("msg", proc, t, float(mid), float(src), "dup")
                    continue
            if tracer is not None:
                tracer.record("msg", proc, t, float(mid), float(src), "recv")
            replicas[proc] += vec

    rel = kernels.residual_norm(A, x_true, b) / nb
    diverged = bool(diverged or not np.isfinite(rel) or rel > divergence_threshold)
    if (injector is not None or elastic_on) and not diverged and not all_done():
        stalled = True
    stalled = stalled and not diverged
    membership: Dict[str, int] = {}
    degraded = False
    if elastic_on:
        membership = mm.census()
        # Degraded = the run finished below its commissioned strength:
        # fewer ranks physically alive (even if detection lagged), fewer
        # believed alive, or grids that contributed under-quota because
        # they spent time parked.
        degraded = bool(
            not diverged
            and not stalled
            and (
                membership["physically_alive"] < mm.nranks0
                or mm.believed_ranks() < mm.nranks0
                or bool(np.any(counts < tmax))
            )
        )
    if tracer is not None:
        for kname, (calls, secs) in sorted(kernels.stats_delta(kstats0).items()):
            tracer.record("kernel", -1, wall, float(secs), float(calls), kname)
        kernels.enable_stats(stats_were_on)
    # Final collection + teardown before the summary so alert events
    # recorded by the collector are part of the merged trace.
    live_summary = live_session.finish() if live_session is not None else None
    return DistributedResult(
        x=x_true,
        rel_residual=float(rel),
        counts=counts,
        wall_time=wall,
        messages=messages,
        strategy=strategy,
        dropped=dropped,
        diverged=diverged,
        stalled=stalled,
        degraded=degraded,
        nranks=nranks_val if elastic_on else 0,
        telemetry=telemetry,
        membership=membership,
        flops_total=flops_total,
        residual_trace=trace,
        activity_trace=activity,
        trace_summary=tracer.summary() if tracer is not None else None,
        kernel_backend=kernels.current_backend(),
        live_summary=live_summary,
    )
