"""Indexed event queue and message dedup index for the simulator.

The original simulator used a bare ``heapq`` of ``(time, seq, kind,
proc, payload)`` tuples and a per-process ``set`` of applied message
ids.  Both worked, but neither supported the operations elasticity
needs:

- **cancellation** — when churn kills the last rank backing a grid,
  the grid's in-flight ``done`` event must die with it.  A bare heap
  cannot remove an interior element; :class:`IndexedEventQueue` hands
  out a handle per push and cancels in O(1) by tombstoning the entry
  (lazy deletion — the tombstone is skipped at pop time, the classic
  heapq recipe).
- **pending-kind queries** — the heartbeat scan must know whether any
  *solve* events remain so it can stop rescheduling itself and let the
  queue drain (otherwise an elastic run never terminates).
  :class:`IndexedEventQueue` keeps a live-count per kind.

Pop order is exactly the old ``(time, seq)`` order — ``seq`` is a
monotonic push counter, so two queues fed the same pushes pop the same
sequence.  That is what keeps a churn-free elastic run bit-identical
to the pre-elastic simulator.

:class:`DedupIndex` is the old per-process ``seen`` sets behind a
first-class interface: O(1) check-and-insert keyed by destination, and
O(1) amortised ``clear_rank`` on restart/handoff (the old code cleared
the set in place; the index swaps in a fresh one).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = ["IndexedEventQueue", "DedupIndex", "EventHandle"]

_CANCELLED = "<cancelled>"

# Entry layout: [time, seq, kind, proc, payload].  Entries are lists so
# a cancel can overwrite ``kind`` in place through the handle.
EventHandle = List[Any]


class IndexedEventQueue:
    """Min-heap of timestamped events with O(1) cancellation.

    Events pop in ``(time, seq)`` order where ``seq`` is the push
    sequence number — deterministic and identical to the tuple-heap it
    replaces.  ``push`` returns a handle; ``cancel(handle)`` tombstones
    the entry without disturbing the heap.
    """

    def __init__(self) -> None:
        self._heap: List[EventHandle] = []
        self._seq = itertools.count()
        self._live = 0
        self._live_by_kind: Dict[str, int] = {}

    def push(self, time: float, kind: str, proc: int, payload: Any = None) -> EventHandle:
        entry: EventHandle = [time, next(self._seq), kind, proc, payload]
        heapq.heappush(self._heap, entry)
        self._live += 1
        self._live_by_kind[kind] = self._live_by_kind.get(kind, 0) + 1
        return entry

    def cancel(self, handle: Optional[EventHandle]) -> bool:
        """Tombstone a pending event; returns False if it already ran
        (or was already cancelled)."""
        if handle is None or handle[2] == _CANCELLED:
            return False
        self._live -= 1
        self._live_by_kind[handle[2]] -= 1
        handle[2] = _CANCELLED
        handle[4] = None  # drop the payload reference eagerly
        return True

    def pop(self) -> Tuple[float, str, int, Any]:
        """Pop the earliest live event as ``(time, kind, proc, payload)``."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry[2] == _CANCELLED:
                continue
            self._live -= 1
            self._live_by_kind[entry[2]] -= 1
            return entry[0], entry[2], entry[3], entry[4]
        raise IndexError("pop from empty event queue")

    def pending(self, *kinds: str) -> int:
        """Live events of the given kinds (all kinds when none given)."""
        if not kinds:
            return self._live
        return sum(self._live_by_kind.get(k, 0) for k in kinds)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class DedupIndex:
    """Per-destination message-id dedup with O(1) lookup and clear.

    ``first_delivery(dst, mid)`` returns True exactly once per
    ``(dst, mid)`` pair; a repeat is a duplicate to discard.
    ``clear_rank`` forgets a destination's history on restart/handoff:
    the re-synced replica is a fresh consistent snapshot that already
    folds in every applied message, so old ids are irrelevant and
    keeping them would only leak memory across restarts.
    """

    def __init__(self, nranks: int) -> None:
        self._seen: List[Set[int]] = [set() for _ in range(nranks)]

    def first_delivery(self, dst: int, mid: int) -> bool:
        s = self._seen[dst]
        if mid in s:
            return False
        s.add(mid)
        return True

    def clear_rank(self, dst: int) -> None:
        self._seen[dst] = set()

    def seen_count(self, dst: int) -> int:
        return len(self._seen[dst])
