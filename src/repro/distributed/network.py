"""Network model for the distributed simulator.

Message transfer time follows the classic alpha-beta (latency +
bandwidth) model with optional per-message jitter:

    T(bytes) = latency * (1 + jitter) + bytes / bandwidth

Per-link latencies can be overridden with a matrix, which lets the
benchmarks place grids "far" from each other (e.g. a fat-tree with the
coarse grids on a remote island).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["NetworkModel"]


@dataclass
class NetworkModel:
    """Latency/bandwidth network with seeded jitter.

    Attributes
    ----------
    latency:
        Base one-way message latency in seconds (default 1 us — a
        fast interconnect).
    bandwidth:
        Link bandwidth in bytes/second (default 10 GB/s).
    jitter:
        Relative standard deviation of the per-message latency noise.
    latency_matrix:
        Optional ``(nprocs, nprocs)`` per-link latency override.
    drop_probability:
        Probability that a message is silently lost (lossy transport /
        no retransmission — the regime an asynchronous method must
        tolerate by design, since it never waits for acknowledgements).
    seed:
        Seed of the jitter and drop processes.  The two draw from
        *independent* streams spawned from this seed, so enabling
        jitter never perturbs the drop sequence for a given seed (and
        vice versa).
    """

    latency: float = 1.0e-6
    bandwidth: float = 1.0e10
    jitter: float = 0.1
    latency_matrix: Optional[np.ndarray] = None
    drop_probability: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0 or self.jitter < 0:
            raise ValueError("latency/bandwidth/jitter must be non-negative (bw > 0)")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if self.latency_matrix is not None:
            m = np.asarray(self.latency_matrix, dtype=np.float64)
            if m.ndim != 2 or m.shape[0] != m.shape[1]:
                raise ValueError("latency_matrix must be square")
            if np.any(m < 0):
                raise ValueError("latencies must be non-negative")
            object.__setattr__(self, "latency_matrix", m)
        jitter_stream, drop_stream = np.random.SeedSequence(self.seed).spawn(2)
        self._rng_jitter = np.random.default_rng(jitter_stream)
        self._rng_drop = np.random.default_rng(drop_stream)

    def link_latency(self, src: int, dst: int) -> float:
        """Base latency of the (src, dst) link."""
        if self.latency_matrix is not None:
            n = self.latency_matrix.shape[0]
            if not (0 <= src < n and 0 <= dst < n):
                raise ValueError(f"process id out of range for {n}-node network")
            return float(self.latency_matrix[src, dst])
        return self.latency

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Sampled wall-clock for one message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        lat = self.link_latency(src, dst)
        if self.jitter > 0:
            lat *= 1.0 + abs(float(self._rng_jitter.normal(0.0, self.jitter)))
        return lat + nbytes / self.bandwidth

    def dropped(self) -> bool:
        """Sample whether the next message is lost in transit."""
        if self.drop_probability == 0.0:
            return False
        return bool(self._rng_drop.uniform() < self.drop_probability)
