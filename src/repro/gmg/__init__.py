"""Geometric multigrid hierarchies for the structured test sets.

The paper builds all hierarchies algebraically (BoomerAMG); for the
structured ``7pt``/``27pt`` cube problems a *geometric* hierarchy —
coarsen each grid dimension by two, interpolate trilinearly — is the
classical alternative.  We provide it as a second, independent
hierarchy construction:

- it cross-validates the AMG setup (both must give grid-size
  independent multigrid on the cube problems), and
- it exercises the additive/asynchronous solvers on hierarchies with a
  very different structure (fixed 8x coarsening, uniform interpolation
  stencils, no aggressive levels).

The produced :class:`repro.amg.hierarchy.Hierarchy` is plug-compatible
with every solver and engine in the library.
"""

from .structured import geometric_hierarchy, trilinear_interpolation, coarse_grid_size

__all__ = ["geometric_hierarchy", "trilinear_interpolation", "coarse_grid_size"]
