"""Structured geometric multigrid setup for cube grids.

Grids hold the ``n^3`` interior points of a Dirichlet cube.  Coarse
points sit at odd fine indices (fine index ``2j + 1`` in each
dimension), so one coarsening step maps grid length ``n`` to
``floor(n / 2)`` — the classical 8x volume coarsening.  Interpolation
is trilinear: the tensor cube of the 1-D stencil ``[1/2, 1, 1/2]``.
Fine points next to the Dirichlet boundary simply lose the weight of
the missing neighbour (the boundary value is zero).
"""

from __future__ import annotations

import scipy.sparse as sp

from ..amg.galerkin import galerkin_product
from ..amg.hierarchy import AMGLevel, Hierarchy, SetupOptions
from ..linalg import as_csr

__all__ = ["coarse_grid_size", "trilinear_interpolation", "geometric_hierarchy"]


def coarse_grid_size(n: int) -> int:
    """Grid length after one geometric coarsening (``floor(n/2)``)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return n // 2


def _interp_1d(n: int) -> sp.csr_matrix:
    """1-D linear interpolation from the ``n//2`` coarse interior points.

    Coarse point ``j`` lives at fine index ``2j + 1``; fine points get
    weight 1 (coincident) or 1/2 (immediate neighbours).
    """
    nc = coarse_grid_size(n)
    if nc < 1:
        raise ValueError(f"grid length {n} cannot be coarsened")
    rows, cols, vals = [], [], []
    for j in range(nc):
        centre = 2 * j + 1
        rows.append(centre)
        cols.append(j)
        vals.append(1.0)
        if centre - 1 >= 0:
            rows.append(centre - 1)
            cols.append(j)
            vals.append(0.5)
        if centre + 1 < n:
            rows.append(centre + 1)
            cols.append(j)
            vals.append(0.5)
    P = sp.csr_matrix((vals, (rows, cols)), shape=(n, nc))
    return as_csr(P)


def trilinear_interpolation(n: int) -> sp.csr_matrix:
    """3-D trilinear interpolation on the ``n^3`` interior cube grid.

    The tensor product ``P1 (x) P1 (x) P1`` — interior weights are the
    classic 27-point {1, 1/2, 1/4, 1/8} stencil.
    """
    P1 = _interp_1d(n)
    return as_csr(sp.kron(sp.kron(P1, P1), P1).tocsr())


def geometric_hierarchy(
    A: sp.spmatrix,
    n: int,
    max_coarse_length: int = 2,
    max_levels: int = 25,
) -> Hierarchy:
    """Geometric hierarchy for an operator on the ``n^3`` cube grid.

    Parameters
    ----------
    A:
        Fine-grid operator, ordered lexicographically over the ``n^3``
        interior points (as produced by
        :func:`repro.problems.stencils.laplacian_7pt` / ``_27pt``).
    n:
        Fine grid length (``A.shape[0]`` must equal ``n**3``).
    max_coarse_length:
        Stop when the next grid length would fall below this.

    Returns
    -------
    A solver-compatible :class:`~repro.amg.hierarchy.Hierarchy` whose
    coarse operators are Galerkin products through the trilinear
    interpolants.
    """
    A = as_csr(A)
    if A.shape[0] != n**3:
        raise ValueError(f"operator size {A.shape[0]} != n^3 = {n**3}")
    # Record the geometric construction in the options for provenance.
    opts = SetupOptions(coarsen_type="hmis", aggressive_levels=0)
    hier = Hierarchy(levels=[AMGLevel(A=A)], options=opts)
    length = n
    while (
        coarse_grid_size(length) >= max_coarse_length
        and hier.nlevels < max_levels
    ):
        level = hier.levels[-1]
        P = trilinear_interpolation(length)
        level.P = P
        level.R = as_csr(P.T)
        Ac = galerkin_product(level.A, P)
        hier.levels.append(AMGLevel(A=Ac))
        length = coarse_grid_size(length)
    if hier.nlevels < 2:
        raise ValueError(f"grid length {n} too small to build a hierarchy")
    return hier
